// Package art implements the Adaptive Radix Tree (Leis et al., ICDE 2013)
// with optimistic lock coupling (Leis et al., DaMoN 2016) — the fastest
// competitor index in the paper's evaluation (§6).
//
// Inner nodes adapt among four layouts (Node4, Node16, Node48, Node256)
// based on fanout, store compressed key prefixes, and keep one optional
// "terminator" child for keys that end exactly at the node. Leaves store
// the full key, so mismatches detected low in the tree are verified
// against complete information (pessimistic path compression is not
// needed).
//
// Node contents are immutable snapshots swapped atomically under the
// node's version lock; readers validate versions hand-over-hand and never
// write shared memory.
package art

import (
	"bytes"
	"sync/atomic"

	"repro/internal/olc"
)

// Tree is a concurrent adaptive radix tree. Create with New.
type Tree struct {
	rootLock olc.Lock
	root     atomic.Pointer[node]
}

// node is a stable identity whose content is swapped on modification.
type node struct {
	lock    olc.Lock
	content atomic.Pointer[content]
}

// Node kinds, adapted by fanout exactly as in the ART paper.
const (
	kind4   = 4
	kind16  = 16
	kind48  = 48
	kind256 = 256
)

// content is an immutable node snapshot: either a leaf (full key + value)
// or an inner node (prefix, sorted/indexed children, optional terminator
// child for keys ending at this depth).
type content struct {
	leaf bool

	// Leaf payload.
	key []byte
	val uint64

	// Inner payload.
	prefix []byte
	kind   int
	// Node4/Node16: parallel sorted arrays.
	bytes []byte
	kids  []*node
	// Node48: byte -> kids index (+1; 0 = none).
	idx *[256]uint8
	// Node256: direct children.
	direct *[256]*node
	// term holds the child for a key that ends exactly after prefix.
	term *node
	// count of non-terminator children.
	count int
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

func newLeaf(key []byte, val uint64) *node {
	n := &node{}
	n.content.Store(&content{leaf: true, key: append([]byte(nil), key...), val: val})
	return n
}

// child returns the child for byte b, or nil.
func (c *content) child(b byte) *node {
	switch c.kind {
	case kind4, kind16:
		for i, cb := range c.bytes {
			if cb == b {
				return c.kids[i]
			}
			if cb > b {
				return nil
			}
		}
		return nil
	case kind48:
		if i := c.idx[b]; i != 0 {
			return c.kids[i-1]
		}
		return nil
	default:
		return c.direct[b]
	}
}

// withChild returns a copy of c with the child for byte b set (grows the
// node kind when full).
func (c *content) withChild(b byte, child *node) *content {
	nc := *c
	switch c.kind {
	case kind4, kind16:
		pos := 0
		for pos < len(c.bytes) && c.bytes[pos] < b {
			pos++
		}
		if pos < len(c.bytes) && c.bytes[pos] == b {
			nc.kids = append(append(append(make([]*node, 0, len(c.kids)), c.kids[:pos]...), child), c.kids[pos+1:]...)
			nc.bytes = c.bytes
			return &nc
		}
		if len(c.bytes) < c.kind {
			nc.bytes = append(append(append(make([]byte, 0, len(c.bytes)+1), c.bytes[:pos]...), b), c.bytes[pos:]...)
			nc.kids = append(append(append(make([]*node, 0, len(c.kids)+1), c.kids[:pos]...), child), c.kids[pos:]...)
			nc.count = c.count + 1
			return &nc
		}
		// Grow: Node4 -> Node16 -> Node48.
		if c.kind == kind4 {
			nc.kind = kind16
		} else {
			nc.kind = kind48
			var idx [256]uint8
			kids := make([]*node, 0, kind48)
			for i, cb := range c.bytes {
				kids = append(kids, c.kids[i])
				idx[cb] = uint8(len(kids))
			}
			kids = append(kids, child)
			idx[b] = uint8(len(kids))
			nc.bytes, nc.kids, nc.idx = nil, kids, &idx
			nc.count = c.count + 1
			return &nc
		}
		return (&nc).insertSorted(c, b, child)
	case kind48:
		if i := c.idx[b]; i != 0 {
			kids := append(make([]*node, 0, len(c.kids)), c.kids...)
			kids[i-1] = child
			nc.kids = kids
			return &nc
		}
		if c.count < kind48 {
			idx := *c.idx
			nc.kids = append(append(make([]*node, 0, len(c.kids)+1), c.kids...), child)
			idx[b] = uint8(len(nc.kids))
			nc.idx = &idx
			nc.count = c.count + 1
			return &nc
		}
		// Grow to Node256.
		var direct [256]*node
		for bb := 0; bb < 256; bb++ {
			if i := c.idx[bb]; i != 0 {
				direct[bb] = c.kids[i-1]
			}
		}
		direct[b] = child
		nc.kind = kind256
		nc.bytes, nc.kids, nc.idx = nil, nil, nil
		nc.direct = &direct
		nc.count = c.count + 1
		return &nc
	default:
		direct := *c.direct
		had := direct[b] != nil
		direct[b] = child
		nc.direct = &direct
		if !had {
			nc.count = c.count + 1
		}
		return &nc
	}
}

// insertSorted finishes a Node4 -> Node16 grow.
func (nc *content) insertSorted(c *content, b byte, child *node) *content {
	pos := 0
	for pos < len(c.bytes) && c.bytes[pos] < b {
		pos++
	}
	nc.bytes = append(append(append(make([]byte, 0, len(c.bytes)+1), c.bytes[:pos]...), b), c.bytes[pos:]...)
	nc.kids = append(append(append(make([]*node, 0, len(c.kids)+1), c.kids[:pos]...), child), c.kids[pos:]...)
	nc.count = c.count + 1
	return nc
}

// withoutChild returns a copy of c with byte b's child removed (kind
// shrinking is not performed; see DESIGN.md).
func (c *content) withoutChild(b byte) *content {
	nc := *c
	switch c.kind {
	case kind4, kind16:
		for i, cb := range c.bytes {
			if cb == b {
				nc.bytes = append(append(make([]byte, 0, len(c.bytes)-1), c.bytes[:i]...), c.bytes[i+1:]...)
				nc.kids = append(append(make([]*node, 0, len(c.kids)-1), c.kids[:i]...), c.kids[i+1:]...)
				nc.count = c.count - 1
				return &nc
			}
		}
		return &nc
	case kind48:
		if i := c.idx[b]; i != 0 {
			idx := *c.idx
			kids := append(make([]*node, 0, len(c.kids)), c.kids...)
			kids[i-1] = nil
			idx[b] = 0
			nc.idx, nc.kids = &idx, kids
			nc.count = c.count - 1
		}
		return &nc
	default:
		direct := *c.direct
		if direct[b] != nil {
			direct[b] = nil
			nc.count = c.count - 1
		}
		nc.direct = &direct
		return &nc
	}
}

// Lookup returns the value stored under key.
func (t *Tree) Lookup(key []byte) (uint64, bool) {
restart:
	n := t.root.Load()
	if n == nil {
		return 0, false
	}
	depth := 0
	var parentLock *olc.Lock
	var parentV uint64
	for {
		v, ok := n.lock.ReadLock()
		if !ok {
			goto restart
		}
		if parentLock != nil && !parentLock.Check(parentV) {
			goto restart
		}
		c := n.content.Load()
		if !n.lock.Check(v) {
			goto restart
		}
		if c.leaf {
			if !bytes.Equal(c.key, key) {
				return 0, false
			}
			return c.val, true
		}
		if !hasPrefix(key[depth:], c.prefix) {
			return 0, false
		}
		depth += len(c.prefix)
		var child *node
		if depth == len(key) {
			child = c.term
		} else {
			child = c.child(key[depth])
			depth++
		}
		if child == nil {
			if !n.lock.ReadUnlock(v) {
				goto restart
			}
			return 0, false
		}
		parentLock, parentV = &n.lock, v
		n = child
	}
}

func hasPrefix(k, prefix []byte) bool {
	return len(k) >= len(prefix) && bytes.Equal(k[:len(prefix)], prefix)
}

func commonPrefix(a, b []byte) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}
