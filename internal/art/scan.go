package art

import "bytes"

// scanState carries a range scan's progress: the current lower bound
// (exclusive after the first emission) and the visit budget.
type scanState struct {
	bound     []byte
	inclusive bool
	count     int
	max       int
	visit     func(key []byte, value uint64) bool
	stop      bool
}

// Scan visits up to max items with key >= start in ascending key order.
// Node contents are immutable snapshots, so the walk validates each
// node's version once and then reads freely; writer interference on a
// node restarts the walk from the last emitted key.
func (t *Tree) Scan(start []byte, max int, visit func(key []byte, value uint64) bool) int {
	st := &scanState{bound: start, inclusive: true, max: max, visit: visit}
	for {
		root := t.root.Load()
		if root == nil || st.count >= max || st.stop {
			return st.count
		}
		if t.scanNode(root, nil, true, st) {
			return st.count
		}
		// Validation failure: restart from the last emitted key.
	}
}

// scanNode walks n's subtree in order. cur is the key bytes accumulated
// above n; bounded reports whether the lower bound can still exclude
// parts of this subtree. Returns false to request a restart.
func (t *Tree) scanNode(n *node, cur []byte, bounded bool, st *scanState) bool {
	v, ok := n.lock.ReadLock()
	if !ok {
		return false
	}
	c := n.content.Load()
	if !n.lock.Check(v) {
		return false
	}
	if c.leaf {
		if st.count >= st.max || st.stop {
			return true
		}
		if bounded {
			cmp := bytes.Compare(c.key, st.bound)
			if cmp < 0 || cmp == 0 && !st.inclusive {
				return true
			}
		}
		st.count++
		st.bound, st.inclusive = c.key, false
		if !st.visit(c.key, c.val) {
			st.stop = true
		}
		return true
	}

	cur = append(cur, c.prefix...)
	// fromByte is the first child byte worth visiting; term is visited
	// only when the bound does not exclude a key equal to cur.
	fromByte := 0
	visitTerm := true
	if bounded {
		m := min(len(cur), len(st.bound))
		switch bytes.Compare(cur[:m], st.bound[:m]) {
		case -1:
			return true // entire subtree below the bound
		case 1:
			bounded = false
		default:
			if len(cur) >= len(st.bound) {
				// cur == bound or extends it: every key here is >= bound
				// except possibly the exact-terminator key.
				visitTerm = len(cur) > len(st.bound) || st.inclusive
				bounded = false
			} else {
				fromByte = int(st.bound[len(cur)])
				visitTerm = false
			}
		}
	}

	if visitTerm && c.term != nil {
		if !t.scanNode(c.term, cur, bounded, st) {
			return false
		}
		if st.count >= st.max || st.stop {
			return true
		}
	}
	emit := func(b byte, child *node) bool {
		// A child at exactly fromByte may still contain keys below the
		// bound, so it stays bounded; later children do not.
		childBounded := bounded && int(b) == fromByte
		if !t.scanNode(child, append(cur, b), childBounded, st) {
			return false
		}
		return true
	}
	switch c.kind {
	case kind4, kind16:
		for i, b := range c.bytes {
			if int(b) < fromByte {
				continue
			}
			if !emit(b, c.kids[i]) {
				return false
			}
			if st.count >= st.max || st.stop {
				return true
			}
		}
	case kind48:
		for b := fromByte; b < 256; b++ {
			if i := c.idx[b]; i != 0 {
				if !emit(byte(b), c.kids[i-1]) {
					return false
				}
				if st.count >= st.max || st.stop {
					return true
				}
			}
		}
	case kind256:
		for b := fromByte; b < 256; b++ {
			if child := c.direct[b]; child != nil {
				if !emit(byte(b), child) {
					return false
				}
				if st.count >= st.max || st.stop {
					return true
				}
			}
		}
	}
	return true
}
