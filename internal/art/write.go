package art

import "bytes"

// Insert adds (key, value), failing if the key is present.
func (t *Tree) Insert(key []byte, value uint64) bool {
	for {
		done, ok := t.insertOnce(key, value)
		if done {
			return ok
		}
	}
}

func (t *Tree) insertOnce(key []byte, value uint64) (done, ok bool) {
	root := t.root.Load()
	if root == nil {
		if !t.rootLock.WriteLock() {
			return false, false
		}
		defer t.rootLock.WriteUnlock()
		if t.root.Load() != nil {
			return false, false
		}
		t.root.Store(newLeaf(key, value))
		return true, true
	}

	var parent *node
	var parentV uint64
	var parentByte int // -1 = terminator slot, -2 = root
	parentByte = -2
	n := root
	depth := 0
	for {
		v, lok := n.lock.ReadLock()
		if !lok {
			return false, false
		}
		c := n.content.Load()
		if !n.lock.Check(v) {
			return false, false
		}

		if c.leaf {
			if bytes.Equal(c.key, key) {
				if !n.lock.Check(v) {
					return false, false
				}
				return true, false // duplicate
			}
			// Split the leaf: a new inner node holding both.
			return t.replaceChild(parent, parentV, parentByte, n, v,
				makeFork(c, n, key, value, depth))
		}

		// Prefix handling.
		rest := key[depth:]
		cp := commonPrefix(rest, c.prefix)
		if cp < len(c.prefix) {
			// Prefix mismatch: fork the prefix.
			return t.replaceChild(parent, parentV, parentByte, n, v,
				makePrefixFork(c, n, key, value, depth, cp))
		}
		depth += len(c.prefix)

		var b int
		var child *node
		if depth == len(key) {
			b = -1
			child = c.term
		} else {
			b = int(key[depth])
			child = c.child(key[depth])
		}
		if child == nil {
			// Add the leaf directly to this node (content swap only).
			if !n.lock.Upgrade(v) {
				return false, false
			}
			leaf := newLeaf(key, value)
			var nc *content
			if b < 0 {
				cc := *c
				cc.term = leaf
				nc = &cc
			} else {
				nc = c.withChild(byte(b), leaf)
			}
			n.content.Store(nc)
			n.lock.WriteUnlock()
			return true, true
		}
		if parent != nil && !parent.lock.Check(parentV) {
			return false, false
		}
		parent, parentV, parentByte = n, v, b
		n = child
		if b >= 0 {
			depth++
		}
	}
}

// makeFork builds the replacement for a leaf that must split into an
// inner node holding the old leaf and the new key.
func makeFork(c *content, old *node, key []byte, value uint64, depth int) *node {
	oldRest := c.key[depth:]
	newRest := key[depth:]
	cp := commonPrefix(oldRest, newRest)
	inner := &content{kind: kind4, prefix: append([]byte(nil), oldRest[:cp]...)}
	newLf := newLeaf(key, value)
	attach := func(rest []byte, child *node) {
		if len(rest) == cp {
			inner.term = child
			return
		}
		*inner = *inner.withChild(rest[cp], child)
	}
	attach(oldRest, old)
	attach(newRest, newLf)
	fork := &node{}
	fork.content.Store(inner)
	return fork
}

// makePrefixFork splits an inner node whose prefix diverges from the key
// at offset cp.
func makePrefixFork(c *content, old *node, key []byte, value uint64, depth, cp int) *node {
	// The old node keeps its identity but with a truncated prefix; it is
	// re-parented under a new fork node. A fresh node object carries the
	// truncated content so in-flight readers of the old node are
	// invalidated by the obsolete mark in replaceChild.
	trunc := *c
	trunc.prefix = append([]byte(nil), c.prefix[cp+1:]...)
	truncNode := &node{}
	truncNode.content.Store(&trunc)

	inner := &content{kind: kind4, prefix: append([]byte(nil), c.prefix[:cp]...)}
	*inner = *inner.withChild(c.prefix[cp], truncNode)
	rest := key[depth:]
	newLf := newLeaf(key, value)
	if len(rest) == cp {
		inner.term = newLf
	} else {
		*inner = *inner.withChild(rest[cp], newLf)
	}
	fork := &node{}
	fork.content.Store(inner)
	return fork
}

// replaceChild swaps parent's pointer to old for repl, marking old
// obsolete when it is being structurally replaced (not merely reused as a
// child). parentByte -2 means old is the root; -1 the terminator slot.
func (t *Tree) replaceChild(parent *node, parentV uint64, parentByte int, old *node, oldV uint64, repl *node) (done, ok bool) {
	oldC := old.content.Load()
	reusedAsChild := oldC.leaf // leaf forks reuse the old node object
	if parent == nil {
		if !t.rootLock.WriteLock() {
			return false, false
		}
		defer t.rootLock.WriteUnlock()
		if t.root.Load() != old {
			return false, false
		}
		if !old.lock.Upgrade(oldV) {
			return false, false
		}
		t.root.Store(repl)
		if reusedAsChild {
			old.lock.WriteUnlock()
		} else {
			old.lock.WriteUnlockObsolete()
		}
		return true, true
	}
	if !parent.lock.Upgrade(parentV) {
		return false, false
	}
	if !old.lock.Upgrade(oldV) {
		parent.lock.WriteUnlock()
		return false, false
	}
	pc := parent.content.Load()
	var npc *content
	if parentByte < 0 {
		cc := *pc
		cc.term = repl
		npc = &cc
	} else {
		npc = pc.withChild(byte(parentByte), repl)
	}
	parent.content.Store(npc)
	parent.lock.WriteUnlock()
	if reusedAsChild {
		old.lock.WriteUnlock()
	} else {
		old.lock.WriteUnlockObsolete()
	}
	return true, true
}

// Update replaces key's value, reporting presence. Leaves are immutable
// snapshots, so the update swaps the leaf's content.
func (t *Tree) Update(key []byte, value uint64) bool {
	for {
		leaf, v, ok, present := t.findLeaf(key)
		if !ok {
			continue
		}
		if !present {
			return false
		}
		if !leaf.lock.Upgrade(v) {
			continue
		}
		c := leaf.content.Load()
		nc := *c
		nc.val = value
		leaf.content.Store(&nc)
		leaf.lock.WriteUnlock()
		return true
	}
}

// findLeaf descends to the leaf for key. ok=false requests a restart;
// present reports whether the leaf holds exactly key.
func (t *Tree) findLeaf(key []byte) (leaf *node, v uint64, ok, present bool) {
	n := t.root.Load()
	if n == nil {
		return nil, 0, true, false
	}
	depth := 0
	for {
		nv, lok := n.lock.ReadLock()
		if !lok {
			return nil, 0, false, false
		}
		c := n.content.Load()
		if !n.lock.Check(nv) {
			return nil, 0, false, false
		}
		if c.leaf {
			return n, nv, true, bytes.Equal(c.key, key)
		}
		if !hasPrefix(key[depth:], c.prefix) {
			return nil, 0, true, false
		}
		depth += len(c.prefix)
		var child *node
		if depth == len(key) {
			child = c.term
		} else {
			child = c.child(key[depth])
			depth++
		}
		if child == nil {
			if !n.lock.ReadUnlock(nv) {
				return nil, 0, false, false
			}
			return nil, 0, true, false
		}
		n = child
	}
}

// Delete removes key, reporting whether it was present. Node kinds do
// not shrink and single-child inner nodes are not collapsed (the paper's
// ART shrinks nodes; this simplification costs a little space and path
// length after heavy deletes — noted in DESIGN.md).
func (t *Tree) Delete(key []byte) bool {
	for {
		done, ok := t.deleteOnce(key)
		if done {
			return ok
		}
	}
}

func (t *Tree) deleteOnce(key []byte) (done, ok bool) {
	root := t.root.Load()
	if root == nil {
		return true, false
	}
	var parent *node
	var parentV uint64
	parentByte := -2
	n := root
	depth := 0
	for {
		v, lok := n.lock.ReadLock()
		if !lok {
			return false, false
		}
		c := n.content.Load()
		if !n.lock.Check(v) {
			return false, false
		}
		if c.leaf {
			if !bytes.Equal(c.key, key) {
				return true, false
			}
			return t.removeLeaf(parent, parentV, parentByte, n, v)
		}
		if !hasPrefix(key[depth:], c.prefix) {
			return true, false
		}
		depth += len(c.prefix)
		var b int
		var child *node
		if depth == len(key) {
			b = -1
			child = c.term
		} else {
			b = int(key[depth])
			child = c.child(key[depth])
		}
		if child == nil {
			if !n.lock.ReadUnlock(v) {
				return false, false
			}
			return true, false
		}
		if parent != nil && !parent.lock.Check(parentV) {
			return false, false
		}
		parent, parentV, parentByte = n, v, b
		n = child
		if b >= 0 {
			depth++
		}
	}
}

// removeLeaf unlinks a leaf from its parent.
func (t *Tree) removeLeaf(parent *node, parentV uint64, parentByte int, leaf *node, leafV uint64) (done, ok bool) {
	if parent == nil {
		if !t.rootLock.WriteLock() {
			return false, false
		}
		defer t.rootLock.WriteUnlock()
		if t.root.Load() != leaf {
			return false, false
		}
		if !leaf.lock.Upgrade(leafV) {
			return false, false
		}
		t.root.Store(nil)
		leaf.lock.WriteUnlockObsolete()
		return true, true
	}
	if !parent.lock.Upgrade(parentV) {
		return false, false
	}
	if !leaf.lock.Upgrade(leafV) {
		parent.lock.WriteUnlock()
		return false, false
	}
	pc := parent.content.Load()
	var npc *content
	if parentByte < 0 {
		cc := *pc
		cc.term = nil
		npc = &cc
	} else {
		npc = pc.withoutChild(byte(parentByte))
	}
	parent.content.Store(npc)
	parent.lock.WriteUnlock()
	leaf.lock.WriteUnlockObsolete()
	return true, true
}
