package art

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func key64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

func TestNodeGrowth(t *testing.T) {
	// One byte position with 300 distinct values walks the node through
	// Node4 -> Node16 -> Node48 -> Node256.
	tr := New()
	var keys [][]byte
	for hi := 0; hi < 2; hi++ {
		for lo := 0; lo < 150; lo++ {
			k := []byte{byte(hi), byte(lo), 7}
			keys = append(keys, k)
			if !tr.Insert(k, uint64(hi*150+lo)) {
				t.Fatalf("insert %v failed", k)
			}
		}
	}
	for i, k := range keys {
		v, ok := tr.Lookup(k)
		if !ok || v != uint64(i) {
			t.Fatalf("lookup %v: %d %v", k, v, ok)
		}
	}
}

func TestPrefixCompressionFork(t *testing.T) {
	tr := New()
	a := []byte("shared-prefix-aaaa")
	b := []byte("shared-prefix-bbbb")
	c := []byte("shared-pre")       // strict prefix of the shared prefix
	d := []byte("shared-prefix-aa") // strict prefix of a
	for i, k := range [][]byte{a, b, c, d} {
		if !tr.Insert(k, uint64(i)) {
			t.Fatalf("insert %q failed", k)
		}
	}
	for i, k := range [][]byte{a, b, c, d} {
		v, ok := tr.Lookup(k)
		if !ok || v != uint64(i) {
			t.Fatalf("lookup %q: %d %v", k, v, ok)
		}
	}
	if _, ok := tr.Lookup([]byte("shared-prefix-")); ok {
		t.Fatal("phantom key found")
	}
	// Delete the terminator-slot keys and verify the others survive.
	if !tr.Delete(c) || !tr.Delete(d) {
		t.Fatal("delete failed")
	}
	for i, k := range [][]byte{a, b} {
		if v, ok := tr.Lookup(k); !ok || v != uint64(i) {
			t.Fatalf("post-delete lookup %q: %d %v", k, v, ok)
		}
	}
}

func TestScanOrder(t *testing.T) {
	tr := New()
	const n = 3000
	perm := rand.New(rand.NewSource(11)).Perm(n)
	for _, i := range perm {
		tr.Insert(key64(uint64(i)*3), uint64(i))
	}
	var prev int64 = -1
	count := tr.Scan(key64(0), n+10, func(k []byte, v uint64) bool {
		cur := int64(binary.BigEndian.Uint64(k))
		if cur <= prev {
			t.Fatalf("scan order: %d after %d", cur, prev)
		}
		prev = cur
		return true
	})
	if count != n {
		t.Fatalf("scan count %d", count)
	}
	// Scan from a mid-range non-existent key.
	first := true
	tr.Scan(key64(301), 1, func(k []byte, v uint64) bool {
		if got := binary.BigEndian.Uint64(k); got != 303 {
			t.Fatalf("scan from 301 starts at %d", got)
		}
		first = false
		return true
	})
	if first {
		t.Fatal("bounded scan visited nothing")
	}
}

func TestScanVariableLengthKeys(t *testing.T) {
	tr := New()
	keys := []string{"a", "ab", "abc", "abd", "b", "ba", "z"}
	for i, k := range keys {
		tr.Insert([]byte(k), uint64(i))
	}
	var got []string
	tr.Scan([]byte("a"), 100, func(k []byte, v uint64) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"a", "ab", "abc", "abd", "b", "ba", "z"}
	if len(got) != len(want) {
		t.Fatalf("scan: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %q want %q", i, got[i], want[i])
		}
	}
}

func TestDeleteRoot(t *testing.T) {
	tr := New()
	tr.Insert([]byte("only"), 1)
	if !tr.Delete([]byte("only")) {
		t.Fatal("delete failed")
	}
	if _, ok := tr.Lookup([]byte("only")); ok {
		t.Fatal("deleted root still visible")
	}
	if !tr.Insert([]byte("again"), 2) {
		t.Fatal("insert after root delete failed")
	}
}

func TestConcurrentInsertLookup(t *testing.T) {
	tr := New()
	nw := runtime.GOMAXPROCS(0) * 2
	const per = 10000
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * per
			for i := uint64(0); i < per; i++ {
				if !tr.Insert(key64(base+i), base+i) {
					t.Errorf("insert %d failed", base+i)
					return
				}
				if v, ok := tr.Lookup(key64(base + i)); !ok || v != base+i {
					t.Errorf("read-own-write %d: %d %v", base+i, v, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for k := uint64(0); k < uint64(nw*per); k++ {
		if v, ok := tr.Lookup(key64(k)); !ok || v != k {
			t.Fatalf("lookup %d: %d %v", k, v, ok)
		}
	}
}

func TestQuickStringModel(t *testing.T) {
	tr := New()
	model := map[string]uint64{}
	f := func(raw []byte, v uint64, op uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 24 {
			raw = raw[:24]
		}
		k := string(raw)
		switch op % 3 {
		case 0:
			_, exists := model[k]
			if tr.Insert([]byte(k), v) == exists {
				return false
			}
			if !exists {
				model[k] = v
			}
		case 1:
			_, exists := model[k]
			if tr.Delete([]byte(k)) != exists {
				return false
			}
			delete(model, k)
		default:
			want, exists := model[k]
			got, ok := tr.Lookup([]byte(k))
			if ok != exists || ok && got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
	// Scan must agree with the sorted model.
	var fromScan []string
	tr.Scan([]byte{0}, len(model)+10, func(k []byte, v uint64) bool {
		fromScan = append(fromScan, string(k))
		return true
	})
	if len(fromScan) != len(model) {
		t.Fatalf("scan found %d keys, model has %d", len(fromScan), len(model))
	}
	for i := 1; i < len(fromScan); i++ {
		if fromScan[i-1] >= fromScan[i] {
			t.Fatalf("scan order violated at %d", i)
		}
	}
	for _, k := range fromScan {
		if _, ok := model[k]; !ok {
			t.Fatalf("scan key %q not in model", k)
		}
	}
}

func TestEmailLikeKeys(t *testing.T) {
	tr := New()
	var keys [][]byte
	for i := 0; i < 5000; i++ {
		k := make([]byte, 32)
		copy(k, fmt.Sprintf("user%06d@domain%02d.example.com", i*17%5000, i%20))
		keys = append(keys, k)
	}
	for i, k := range keys {
		if !tr.Insert(k, uint64(i)) {
			t.Fatalf("insert %d failed", i)
		}
	}
	for i, k := range keys {
		if v, ok := tr.Lookup(k); !ok || v != uint64(i) {
			t.Fatalf("lookup %d failed", i)
		}
	}
	var prev []byte
	tr.Scan(bytes.Repeat([]byte{0}, 1), 6000, func(k []byte, v uint64) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatal("scan order violated")
		}
		prev = append(prev[:0], k...)
		return true
	})
}
