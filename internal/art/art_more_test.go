package art

import (
	"encoding/binary"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestDeleteFromLargeNodes drives one byte position through every node
// kind and then deletes back down, exercising withoutChild on Node48 and
// Node256 (kinds never shrink, but removal must work at every size).
func TestDeleteFromLargeNodes(t *testing.T) {
	tr := New()
	keys := make([][]byte, 0, 256)
	for b := 0; b < 256; b++ {
		k := []byte{1, byte(b), 2}
		keys = append(keys, k)
		if !tr.Insert(k, uint64(b)) {
			t.Fatalf("insert %v failed", k)
		}
	}
	// Delete every other key; the rest must stay reachable.
	for b := 0; b < 256; b += 2 {
		if !tr.Delete(keys[b]) {
			t.Fatalf("delete %v failed", keys[b])
		}
	}
	for b := 0; b < 256; b++ {
		v, ok := tr.Lookup(keys[b])
		if b%2 == 0 {
			if ok {
				t.Fatalf("deleted %v visible", keys[b])
			}
		} else if !ok || v != uint64(b) {
			t.Fatalf("lookup %v: %d %v", keys[b], v, ok)
		}
	}
	// Scans agree.
	count := 0
	tr.Scan([]byte{0}, 300, func(k []byte, v uint64) bool { count++; return true })
	if count != 128 {
		t.Fatalf("scan count %d", count)
	}
	// Double delete fails.
	if tr.Delete(keys[0]) {
		t.Fatal("double delete succeeded")
	}
}

// TestTermSlotUnderChurn exercises the terminator slot (keys ending
// exactly at an inner node) amid sibling inserts and deletes.
func TestTermSlotUnderChurn(t *testing.T) {
	tr := New()
	prefix := []byte("prefix")
	tr.Insert(prefix, 1) // will occupy a term slot after forking
	for i := 0; i < 50; i++ {
		k := append(append([]byte{}, prefix...), byte(i), byte(i))
		tr.Insert(k, uint64(100+i))
	}
	if v, ok := tr.Lookup(prefix); !ok || v != 1 {
		t.Fatalf("term key: %d %v", v, ok)
	}
	if !tr.Delete(prefix) {
		t.Fatal("term delete failed")
	}
	if _, ok := tr.Lookup(prefix); ok {
		t.Fatal("deleted term key visible")
	}
	if !tr.Insert(prefix, 2) {
		t.Fatal("term re-insert failed")
	}
	if v, _ := tr.Lookup(prefix); v != 2 {
		t.Fatalf("term value %d", v)
	}
}

// TestConcurrentScanWhileMutating verifies scans stay ordered and
// duplicate-free while writers churn the trie.
func TestConcurrentScanWhileMutating(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 20000; i += 2 {
		var k [8]byte
		binary.BigEndian.PutUint64(k[:], i)
		tr.Insert(k[:], i)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var k [8]byte
			for !stop.Load() {
				n := uint64(rng.Intn(10000))*2 + 1
				binary.BigEndian.PutUint64(k[:], n)
				if rng.Intn(2) == 0 {
					tr.Insert(k[:], n)
				} else {
					tr.Delete(k[:])
				}
			}
		}(w)
	}
	for round := 0; round < 10; round++ {
		var prev int64 = -1
		tr.Scan([]byte{0, 0, 0, 0, 0, 0, 0, 0}, 5000, func(k []byte, v uint64) bool {
			cur := int64(binary.BigEndian.Uint64(k))
			if cur <= prev {
				t.Errorf("scan order: %d after %d", cur, prev)
				return false
			}
			prev = cur
			return true
		})
		if t.Failed() {
			break
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestConcurrentUpdateValueIntegrity: updates swap leaf contents; readers
// must always see one of the written values, never garbage.
func TestConcurrentUpdateValueIntegrity(t *testing.T) {
	tr := New()
	key := []byte("contended")
	tr.Insert(key, 0)
	nw := runtime.GOMAXPROCS(0) * 2
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				if w%2 == 0 {
					tr.Update(key, uint64(w)<<32|uint64(i))
				} else if v, ok := tr.Lookup(key); ok {
					if v != 0 && v>>32 >= uint64(nw) {
						t.Errorf("garbage value %x", v)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
