// Command ycsbgen writes a YCSB operation trace to stdout, one operation
// per line, for feeding external systems or inspecting the generator:
//
//	ycsbgen -workload a -keys rand -n 100000 -population 1000000
//
// Line formats:
//
//	INSERT <hexkey> <value>
//	READ   <hexkey>
//	UPDATE <hexkey> <value>
//	SCAN   <hexkey> <len>
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"repro/internal/ycsb"
)

func main() {
	workload := flag.String("workload", "a", "workload: insert, a, c, e")
	keyType := flag.String("keys", "rand", "key type: mono, rand, email, hc, path")
	n := flag.Int("n", 100000, "operations to emit")
	population := flag.Int("population", 1000000, "loaded key population backing the workload")
	seed := flag.Uint64("seed", 2018, "generator seed")
	flag.Parse()

	wl, err := ycsb.ParseWorkload(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ycsbgen:", err)
		os.Exit(2)
	}
	kt, err := ycsb.ParseKeyType(*keyType)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ycsbgen:", err)
		os.Exit(2)
	}

	pop := *population
	if wl == ycsb.InsertOnly {
		pop = *n
	}
	ks := ycsb.NewKeySet(kt, pop)
	stream := ycsb.NewStream(wl, ks, 0, *seed)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i := 0; i < *n; i++ {
		op := stream.Next()
		switch op.Kind {
		case ycsb.OpInsert:
			fmt.Fprintf(w, "INSERT %s %d\n", hex.EncodeToString(op.Key), op.Value)
		case ycsb.OpRead:
			fmt.Fprintf(w, "READ %s\n", hex.EncodeToString(op.Key))
		case ycsb.OpUpdate:
			fmt.Fprintf(w, "UPDATE %s %d\n", hex.EncodeToString(op.Key), op.Value)
		case ycsb.OpScan:
			fmt.Fprintf(w, "SCAN %s %d\n", hex.EncodeToString(op.Key), op.ScanLen)
		}
	}
}
