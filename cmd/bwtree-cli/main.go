// Command bwtree-cli is an interactive shell over a single OpenBw-Tree,
// useful for exploring the index's behaviour and internal statistics.
//
//	$ go run ./cmd/bwtree-cli
//	bw> put apple 1
//	OK
//	bw> scan a 10
//	apple = 1
//	bw> stats
//	...
//
// It also runs one-shot: `bwtree-cli [-json] [-load n] stats|shape`
// preloads n sequential keys and prints the tree's operation counters or
// node-shape statistics, aligned for terminals or as JSON for scripts.
//
// Commands: put/get/del/update/scan/rscan/count/stats/shape/dump/help/quit.
package main

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"

	"repro/bwtree"
	"repro/internal/obs"
)

var jsonOut bool

func main() {
	args := os.Args[1:]
	load := 0
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		switch flag := strings.TrimLeft(args[0], "-"); {
		case flag == "json":
			jsonOut = true
			args = args[1:]
		case flag == "load":
			if len(args) < 2 {
				fmt.Fprintln(os.Stderr, "bwtree-cli: -load needs a count")
				os.Exit(2)
			}
			n, err := strconv.Atoi(args[1])
			if err != nil || n < 0 {
				fmt.Fprintf(os.Stderr, "bwtree-cli: bad -load count %q\n", args[1])
				os.Exit(2)
			}
			load = n
			args = args[2:]
		case flag == "h" || flag == "help":
			usage(os.Stdout)
			return
		default:
			fmt.Fprintf(os.Stderr, "bwtree-cli: unknown flag %q\n", args[0])
			usage(os.Stderr)
			os.Exit(2)
		}
	}

	opts := bwtree.DefaultOptions()
	if len(args) > 0 && args[0] == "trace" {
		// The trace subcommand needs phase sampling compiled into the
		// tree it is about to exercise. The period is coprime to the
		// 4-op workload cycle so every op class gets sampled.
		opts.PhaseSampleEvery = 7
		opts.PhaseTraceBuffer = 1 << 14
		opts.FlightRecorderSize = 256
		if load == 0 {
			load = 50_000
		}
	}
	t := bwtree.New(opts)
	defer t.Close()
	s := t.NewSession()
	defer s.Release()

	if load > 0 {
		key := make([]byte, 8)
		for i := 0; i < load; i++ {
			binary.BigEndian.PutUint64(key, uint64(i))
			s.Insert(key, uint64(i))
		}
	}

	// One-shot mode: run the subcommand and exit.
	if len(args) > 0 {
		switch args[0] {
		case "stats":
			printStats(t)
		case "shape", "structure":
			printShape(t)
		case "snapshot":
			if len(args) != 2 {
				fmt.Fprintln(os.Stderr, "usage: bwtree-cli [-load n] snapshot <dir>")
				os.Exit(2)
			}
			count, err := bwtree.Snapshot(t, args[1])
			if err != nil {
				fmt.Fprintf(os.Stderr, "bwtree-cli: snapshot: %v\n", err)
				os.Exit(1)
			}
			printKVs("snapshot written", []kv{
				{"dir", args[1]},
				{"keys", count},
			})
		case "restore":
			if len(args) != 2 {
				fmt.Fprintln(os.Stderr, "usage: bwtree-cli [-json] restore <dir>")
				os.Exit(2)
			}
			if err := runRestore(args[1]); err != nil {
				fmt.Fprintf(os.Stderr, "bwtree-cli: restore: %v\n", err)
				os.Exit(1)
			}
		case "trace":
			if len(args) > 2 {
				fmt.Fprintln(os.Stderr, "usage: bwtree-cli [-load n] trace [file]")
				os.Exit(2)
			}
			out := ""
			if len(args) == 2 {
				out = args[1]
			}
			if err := runTrace(t, s, load, out); err != nil {
				fmt.Fprintf(os.Stderr, "bwtree-cli: trace: %v\n", err)
				os.Exit(1)
			}
		case "promcheck":
			if len(args) != 2 {
				fmt.Fprintln(os.Stderr, "usage: bwtree-cli promcheck <url|file|->")
				os.Exit(2)
			}
			if err := runPromCheck(args[1]); err != nil {
				fmt.Fprintf(os.Stderr, "bwtree-cli: promcheck: %v\n", err)
				os.Exit(1)
			}
		default:
			fmt.Fprintf(os.Stderr, "bwtree-cli: unknown subcommand %q (stats, shape, snapshot, restore, trace, promcheck)\n", args[0])
			os.Exit(2)
		}
		return
	}

	fmt.Println("OpenBw-Tree shell — 'help' for commands")
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("bw> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" && !dispatch(t, s, line) {
			return
		}
		fmt.Print("bw> ")
	}
}

func usage(w *os.File) {
	fmt.Fprint(w, `usage: bwtree-cli [-json] [-load n] [stats|shape|snapshot <dir>|restore <dir>|trace [file]|promcheck <src>]

With a subcommand, runs it and exits (use -load to populate the tree
first). Without one, starts an interactive shell.

  stats           print the tree's operation counters
  shape           print node-shape statistics (Table 2 quantities)
  snapshot <dir>  checkpoint the tree into a fresh <dir> (snapshot + manifest)
  restore <dir>   recover the durable state in <dir>, validate it, and
                  print recovery statistics
  trace [file]    run a mixed workload with phase sampling on and write
                  the Chrome trace-event JSON to file (default stdout);
                  load it in chrome://tracing or ui.perfetto.dev
  promcheck <src> parse Prometheus text from a URL, file, or - (stdin)
                  and verify it is well-formed (exit 1 if not)
`)
}

// runTrace exercises the tree with a mixed single-op workload (the -load
// preload already ran sampled inserts), then renders every sampled phase
// trace as Chrome trace-event JSON.
func runTrace(t *bwtree.Tree, s *bwtree.Session, load int, outPath string) error {
	key := make([]byte, 8)
	var out []uint64
	for i := 0; i < load; i++ {
		binary.BigEndian.PutUint64(key, uint64(i))
		switch i % 4 {
		case 0:
			s.Update(key, uint64(i)*2)
		case 1:
			out = s.Lookup(key, out[:0])
		case 2:
			s.Delete(key, 0)
		default:
			s.Scan(key, 16, func([]byte, uint64) bool { return true })
		}
	}
	traces := t.PhaseTraces()
	w := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := bwtree.WriteChromeTrace(w, traces); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bwtree-cli: wrote %d sampled op traces\n", len(traces))
	if len(traces) == 0 {
		return fmt.Errorf("no traces sampled (is -load too small?)")
	}
	return nil
}

// runPromCheck validates Prometheus exposition text fetched from a URL,
// read from a file, or piped on stdin ("-").
func runPromCheck(src string) error {
	var r io.Reader
	switch {
	case src == "-":
		r = os.Stdin
	case strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://"):
		resp, err := http.Get(src)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: HTTP %s", src, resp.Status)
		}
		r = resp.Body
	default:
		f, err := os.Open(src)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	n, err := obs.ParsePrometheus(r)
	if err != nil {
		return err
	}
	fmt.Printf("prometheus ok: %d samples\n", n)
	return nil
}

// runRestore recovers a durable directory, validates the tree, and
// reports what recovery did.
func runRestore(dir string) error {
	d, err := bwtree.OpenDurable(dir, bwtree.DurableOptions{})
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Tree().Validate(); err != nil {
		return fmt.Errorf("recovered tree failed validation: %w", err)
	}
	rec := d.RecoveryStats()
	printKVs("recovery", []kv{
		{"snapshot_keys", rec.SnapshotKeys},
		{"snapshot_lsn", rec.SnapshotLSN},
		{"replayed_records", rec.Replayed},
		{"last_lsn", rec.LastLSN},
		{"torn_tail", rec.TornTail},
		{"snapshot_load_ms", float64(rec.SnapshotLoad.Microseconds()) / 1000},
		{"replay_ms", float64(rec.Replay.Microseconds()) / 1000},
		{"live_keys", d.Tree().Count()},
		{"validated", true},
	})
	return nil
}

// kv is one labelled statistic; a slice renders as an aligned table or,
// with -json, as an ordered JSON object.
type kv struct {
	key string
	val any
}

func printKVs(title string, kvs []kv) {
	if jsonOut {
		// Build the object by hand to keep the field order.
		var b strings.Builder
		b.WriteString("{")
		for i, e := range kvs {
			if i > 0 {
				b.WriteString(",")
			}
			name, _ := json.Marshal(e.key)
			val, _ := json.Marshal(e.val)
			b.Write(name)
			b.WriteString(":")
			b.Write(val)
		}
		b.WriteString("}")
		fmt.Println(b.String())
		return
	}
	width := 0
	for _, e := range kvs {
		if len(e.key) > width {
			width = len(e.key)
		}
	}
	fmt.Println(title)
	for _, e := range kvs {
		switch v := e.val.(type) {
		case float64:
			fmt.Printf("  %-*s  %.4f\n", width, e.key, v)
		default:
			fmt.Printf("  %-*s  %v\n", width, e.key, v)
		}
	}
}

func printStats(t *bwtree.Tree) {
	st := t.Stats()
	printKVs("operation counters", []kv{
		{"ops", st.Ops},
		{"aborts", st.Aborts},
		{"abort_rate", st.AbortRate()},
		{"consolidations", st.Consolidations},
		{"splits", st.Splits},
		{"merges", st.Merges},
		{"slab_full", st.SlabFull},
		{"pointer_chases", st.PointerChases},
		{"cas_failures", st.CASFailures},
		{"leaf_prealloc_util", st.LeafPreallocUtilization()},
		{"inner_prealloc_util", st.InnerPreallocUtilization()},
		{"gc_retired", st.GC.Retired},
		{"gc_reclaimed", st.GC.Reclaimed},
		{"gc_advances", st.GC.Advances},
	})
}

func printShape(t *bwtree.Tree) {
	st := t.StructureStats()
	printKVs("tree shape (Table 2 quantities)", []kv{
		{"height", st.Height},
		{"inner_nodes", st.InnerNodes},
		{"leaf_nodes", st.LeafNodes},
		{"avg_inner_chain_len", st.AvgInnerChainLen},
		{"avg_leaf_chain_len", st.AvgLeafChainLen},
		{"avg_inner_node_size", st.AvgInnerNodeSize},
		{"avg_leaf_node_size", st.AvgLeafNodeSize},
		{"inner_prealloc_util", st.InnerPreallocUse},
		{"leaf_prealloc_util", st.LeafPreallocUse},
		{"flat_bases", st.FlatBases},
		{"arena_bytes", st.ArenaBytes},
		{"inner_flat_bases", st.InnerFlatBases},
		{"inner_arena_bytes", st.InnerArenaBytes},
		{"key_bytes", st.KeyBytes},
		{"gc_ptrs_per_leaf", st.GCPtrsPerLeaf},
		{"gc_ptrs_per_inner", st.GCPtrsPerInner},
		{"leaf_bytes_per_entry", st.LeafBytesPerEntry},
	})
}

func dispatch(t *bwtree.Tree, s *bwtree.Session, line string) bool {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "quit", "exit":
		return false
	case "help":
		fmt.Print(`commands:
  put <key> <uint64>      insert a pair (fails on duplicate key)
  get <key>               look a key up
  update <key> <uint64>   replace a key's value
  del <key>               delete a key
  scan <start> <n>        visit n pairs in ascending order from start
  rscan <start> <n>       visit n pairs in descending order from start
  count                   number of live pairs
  stats                   operation counters (append 'json' for JSON)
  shape                   node-shape statistics (Table 2 quantities)
  dump                    render the tree (small trees only!)
  path <key>              diagnostic root-to-leaf descent dump for a key
  quit
`)
	case "put", "update", "insert":
		if len(args) != 2 {
			fmt.Println("usage:", cmd, "<key> <value>")
			break
		}
		v, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			fmt.Println("bad value:", err)
			break
		}
		var ok bool
		if cmd == "update" {
			ok = s.Update([]byte(args[0]), v)
		} else {
			ok = s.Insert([]byte(args[0]), v)
		}
		if ok {
			fmt.Println("OK")
		} else {
			fmt.Println("FAILED (duplicate or missing key)")
		}
	case "get":
		if len(args) != 1 {
			fmt.Println("usage: get <key>")
			break
		}
		vals := s.Lookup([]byte(args[0]), nil)
		if len(vals) == 0 {
			fmt.Println("(not found)")
		}
		for _, v := range vals {
			fmt.Println(v)
		}
	case "del", "delete":
		if len(args) != 1 {
			fmt.Println("usage: del <key>")
			break
		}
		if s.Delete([]byte(args[0]), 0) {
			fmt.Println("OK")
		} else {
			fmt.Println("(not found)")
		}
	case "scan", "rscan":
		if len(args) != 2 {
			fmt.Println("usage:", cmd, "<start> <n>")
			break
		}
		n, err := strconv.Atoi(args[1])
		if err != nil {
			fmt.Println("bad count:", err)
			break
		}
		visit := func(k []byte, v uint64) bool {
			fmt.Printf("%s = %d\n", k, v)
			return true
		}
		if cmd == "scan" {
			s.Scan([]byte(args[0]), n, visit)
		} else {
			s.ScanReverse([]byte(args[0]), n, visit)
		}
	case "count":
		fmt.Println(t.Count())
	case "stats":
		withJSON(args, func() { printStats(t) })
	case "shape", "structure":
		withJSON(args, func() { printShape(t) })
	case "dump":
		fmt.Print(t.Dump())
	case "path":
		// Diagnostic descent: every hop from the root toward the leaf
		// covering the key, stopping AT any anomaly (nil mapping entry,
		// ∆abort/∆remove head, routing dead end) instead of retrying
		// past it — the tool for "why does this key hang".
		if len(args) != 1 {
			fmt.Println("usage: path <key>")
			break
		}
		fmt.Print(bwtree.FormatPath(t.DescendPath([]byte(args[0]))))
	default:
		fmt.Printf("unknown command %q ('help' lists commands)\n", cmd)
	}
	return true
}

// withJSON runs print with JSON output when the shell command had a
// trailing 'json' argument.
func withJSON(args []string, print func()) {
	saved := jsonOut
	if len(args) > 0 && args[0] == "json" {
		jsonOut = true
	}
	print()
	jsonOut = saved
}
