// Command bwtree-cli is an interactive shell over a single OpenBw-Tree,
// useful for exploring the index's behaviour and internal statistics.
//
//	$ go run ./cmd/bwtree-cli
//	bw> put apple 1
//	OK
//	bw> scan a 10
//	apple = 1
//	bw> stats
//	...
//
// Commands: put/get/del/update/scan/rscan/count/stats/structure/dump/help/quit.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/bwtree"
)

func main() {
	opts := bwtree.DefaultOptions()
	t := bwtree.New(opts)
	defer t.Close()
	s := t.NewSession()
	defer s.Release()

	fmt.Println("OpenBw-Tree shell — 'help' for commands")
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("bw> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" && !dispatch(t, s, line) {
			return
		}
		fmt.Print("bw> ")
	}
}

func dispatch(t *bwtree.Tree, s *bwtree.Session, line string) bool {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "quit", "exit":
		return false
	case "help":
		fmt.Print(`commands:
  put <key> <uint64>      insert a pair (fails on duplicate key)
  get <key>               look a key up
  update <key> <uint64>   replace a key's value
  del <key>               delete a key
  scan <start> <n>        visit n pairs in ascending order from start
  rscan <start> <n>       visit n pairs in descending order from start
  count                   number of live pairs
  stats                   operation counters
  structure               node-shape statistics (Table 2 quantities)
  dump                    render the tree (small trees only!)
  quit
`)
	case "put", "update", "insert":
		if len(args) != 2 {
			fmt.Println("usage:", cmd, "<key> <value>")
			break
		}
		v, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			fmt.Println("bad value:", err)
			break
		}
		var ok bool
		if cmd == "update" {
			ok = s.Update([]byte(args[0]), v)
		} else {
			ok = s.Insert([]byte(args[0]), v)
		}
		if ok {
			fmt.Println("OK")
		} else {
			fmt.Println("FAILED (duplicate or missing key)")
		}
	case "get":
		if len(args) != 1 {
			fmt.Println("usage: get <key>")
			break
		}
		vals := s.Lookup([]byte(args[0]), nil)
		if len(vals) == 0 {
			fmt.Println("(not found)")
		}
		for _, v := range vals {
			fmt.Println(v)
		}
	case "del", "delete":
		if len(args) != 1 {
			fmt.Println("usage: del <key>")
			break
		}
		if s.Delete([]byte(args[0]), 0) {
			fmt.Println("OK")
		} else {
			fmt.Println("(not found)")
		}
	case "scan", "rscan":
		if len(args) != 2 {
			fmt.Println("usage:", cmd, "<start> <n>")
			break
		}
		n, err := strconv.Atoi(args[1])
		if err != nil {
			fmt.Println("bad count:", err)
			break
		}
		visit := func(k []byte, v uint64) bool {
			fmt.Printf("%s = %d\n", k, v)
			return true
		}
		if cmd == "scan" {
			s.Scan([]byte(args[0]), n, visit)
		} else {
			s.ScanReverse([]byte(args[0]), n, visit)
		}
	case "count":
		fmt.Println(t.Count())
	case "stats":
		st := t.Stats()
		fmt.Printf("ops=%d aborts=%d (%.2f%%) consolidations=%d splits=%d merges=%d casFailures=%d\n",
			st.Ops, st.Aborts, st.AbortRate()*100, st.Consolidations, st.Splits, st.Merges, st.CASFailures)
		fmt.Printf("gc: retired=%d reclaimed=%d advances=%d\n", st.GC.Retired, st.GC.Reclaimed, st.GC.Advances)
	case "structure":
		st := t.StructureStats()
		fmt.Printf("height=%d innerNodes=%d leafNodes=%d\n", st.Height, st.InnerNodes, st.LeafNodes)
		fmt.Printf("avg inner chain=%.2f leaf chain=%.2f inner size=%.1f leaf size=%.1f\n",
			st.AvgInnerChainLen, st.AvgLeafChainLen, st.AvgInnerNodeSize, st.AvgLeafNodeSize)
	case "dump":
		fmt.Print(t.Dump())
	default:
		fmt.Printf("unknown command %q ('help' lists commands)\n", cmd)
	}
	return true
}
