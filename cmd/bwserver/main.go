// bwserver is the sharded serving tier: the keyspace is partitioned
// across N per-core Bw-Tree shards (hash or range routed), fronted by a
// pipelined length-prefixed binary protocol (internal/bwproto) over TCP.
// Every connection gets its own store session — per-shard epoch handles
// and scratch — mirroring the paper's "index inside a DBMS with a worker
// pool" deployment (§2) scaled out the way per-core designs shard to
// dodge cross-core synchronization entirely.
//
// Run a volatile 8-shard server with a debug surface:
//
//	go run ./cmd/bwserver -addr :7070 -shards 8 -debug-addr :7071
//
// With -wal DIR the store is durable: each shard owns a log directory
// DIR/shard-NNN (group commit, synchronous acknowledgement), recovery
// replays all shard logs in parallel on startup, and SIGINT/SIGTERM shut
// down gracefully — stop accepting, drain connections, checkpoint every
// shard, close the logs.
//
// Drive it with the stress rig or the benchmark harness:
//
//	go run ./cmd/bwstress -server localhost:7070 -workers 64 -check
//	SERVER_ADDR=localhost:7070 go run ./cmd/bwbench server
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/bwtree"
	"repro/internal/bwproto"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/txn"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "number of tree shards")
	router := flag.String("router", "hash", "keyspace router: hash or range")
	walDir := flag.String("wal", "", "WAL root directory (empty = volatile); each shard logs under <dir>/shard-NNN")
	sync := flag.Bool("sync", true, "durable only: fsync before acknowledging commits")
	debugAddr := flag.String("debug-addr", "", "serve /debug and /metrics on this address")
	lat := flag.Bool("lat", false, "record latency histograms (adds two clock reads per op)")
	phaseEvery := flag.Int("phase-every", 0, "sample a full phase trace every N ops per session (0 = off)")
	flightRec := flag.Int("flightrec", 0, "per-session flight-recorder ring size (0 = off)")
	drainTimeout := flag.Duration("drain", 5*time.Second, "shutdown: how long to wait for connections to drain")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("bwserver: ")

	treeOpts := bwtree.DefaultOptions()
	treeOpts.LatencyHistograms = *lat
	treeOpts.PhaseSampleEvery = *phaseEvery
	treeOpts.FlightRecorderSize = *flightRec

	r, err := shard.NewRouter(*router, *shards)
	if err != nil {
		log.Fatal(err)
	}
	opened := time.Now()
	st, err := shard.Open(shard.Options{
		Shards:       *shards,
		Router:       r,
		Tree:         treeOpts,
		WALDir:       *walDir,
		SyncOnCommit: *sync,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *walDir != "" {
		rec := st.RecoveryStats()
		log.Printf("recovered %d shard logs in %v: %d snapshot keys, %d records replayed, torn_tail=%v",
			*shards, time.Since(opened).Round(time.Millisecond), rec.SnapshotKeys, rec.Replayed, rec.TornTail)
	}

	srv := bwproto.NewServer(st)

	var debug *obs.Server
	if *debugAddr != "" {
		// The transaction engine hangs off the protocol server, so its
		// counters (txn_commits, txn_conflicts, validate latency) join the
		// store's series on /metrics.
		debug, err = obs.Serve(*debugAddr, txn.AugmentVars(shard.DebugVars(st), srv.Txn()), time.Second)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("debug surface on http://%s/debug", debug.Addr())
	}

	if err := srv.Listen(*addr); err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on %s: %d shards, %s router, durable=%v", srv.Addr(), *shards, r.Name(), *walDir != "")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down: draining connections (up to %v)", *drainTimeout)
	srv.Shutdown(*drainTimeout)
	if debug != nil {
		debug.Close()
	}
	if *walDir != "" {
		if err := st.Checkpoint(); err != nil {
			log.Printf("final checkpoint: %v", err)
		} else {
			log.Printf("final checkpoint complete")
		}
	}
	if err := st.Close(); err != nil {
		log.Printf("close: %v", err)
		os.Exit(1)
	}
	s := srv.Stats()
	fmt.Printf("bwserver: served %d frames over %d connections, %d protocol errors\n",
		s.Frames, s.ConnsTotal, s.ProtoErrors)
}
