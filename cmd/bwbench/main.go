// Command bwbench regenerates the tables and figures of "Building a
// Bw-Tree Takes More Than Just Buzz Words" (SIGMOD 2018).
//
// Usage:
//
//	bwbench [flags] <experiment> [<experiment> ...]
//	bwbench [flags] all
//	bwbench list
//	bwbench [-json] [-bench-dir dir] trend
//
// Experiments are named after the paper: fig8 fig9 fig10 fig11 table2
// fig12a fig12b fig13 fig14 fig15 table3 fig16 fig17 fig18.
//
// Flags scale the runs; defaults finish on a laptop in minutes. To
// approach paper scale use -keys 52000000 -ops 20000000 -threads 20.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/harness"
)

func main() {
	def := harness.DefaultScale()
	keys := flag.Int("keys", def.Keys, "load-phase key population per run")
	ops := flag.Int("ops", def.Ops, "run-phase operations per run")
	threads := flag.Int("threads", def.Threads, "worker goroutines for multi-threaded runs")
	seed := flag.Uint64("seed", def.Seed, "workload seed")
	jsonOut := flag.Bool("json", false, "trend: emit the trajectory as JSON instead of a table")
	benchDir := flag.String("bench-dir", "bench", "trend: directory holding BENCH_*.json baselines")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bwbench [flags] <experiment>... | all | list\n\nexperiments:\n")
		for _, e := range harness.Experiments() {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.Name, e.Brief)
		}
		fmt.Fprintf(os.Stderr, "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	sc := harness.Scale{Keys: *keys, Ops: *ops, Threads: *threads, Seed: *seed}

	if args[0] == "list" {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-8s %s\n", e.Name, e.Brief)
		}
		return
	}

	if args[0] == "trend" {
		if err := harness.Trend(os.Stdout, *benchDir, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "bwbench: trend: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("bwbench: keys=%d ops=%d threads=%d GOMAXPROCS=%d\n\n",
		sc.Keys, sc.Ops, sc.Threads, runtime.GOMAXPROCS(0))

	if args[0] == "all" {
		start := time.Now()
		harness.RunAll(os.Stdout, sc)
		fmt.Printf("total: %s\n", time.Since(start).Round(time.Second))
		exitGate()
		return
	}

	byName := map[string]harness.Experiment{}
	for _, e := range harness.Experiments() {
		byName[e.Name] = e
	}
	for _, name := range args {
		e, ok := byName[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "bwbench: unknown experiment %q (try 'bwbench list')\n", name)
			os.Exit(2)
		}
		start := time.Now()
		fmt.Printf("### %s — %s\n\n", e.Name, e.Brief)
		e.Run(os.Stdout, sc)
		fmt.Printf("[%s in %s]\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
	exitGate()
}

// exitGate fails the process when a gate experiment (bench-gate, checked)
// recorded violations, so CI can rely on the exit code.
func exitGate() {
	if n := harness.GateFailures(); n > 0 {
		fmt.Fprintf(os.Stderr, "bwbench: %d gate failure(s)\n", n)
		os.Exit(1)
	}
}
