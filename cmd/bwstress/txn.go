package main

// The -txn mode: a bank-transfer soak for the optimistic transaction
// layer (internal/txn). N accounts start with an equal balance; workers
// move random amounts between random pairs through multi-key commits.
// The invariant is global and unforgiving: the total balance never
// changes, no matter how transfers interleave, conflict, crash, or
// recover — any torn commit, lost write, or half-applied WAL record
// shifts the sum.
//
// Three invariant probes run at different trust levels:
//
//  1. Online audit transactions: every worker periodically commits a
//     read-only transaction over EVERY account. OCC validation makes a
//     committed audit a serializable snapshot, so its sum must be exact
//     — catching torn visibility while the workload is still running.
//  2. Quiescent sweeps after every stop (and every recovery): re-read
//     all accounts and compare against the seeded total.
//  3. With -check, every committed transfer is recorded and the history
//     is verified conflict-serializable (histcheck.CheckSerial) — per
//     recovery epoch: a crash restarts the store's version counter, so
//     each incarnation's history is checked and drained at the recovery
//     boundary, with earlier epochs' surviving writes acting as
//     pre-history.
//
// Deployment shapes, matching the non-transactional soak:
//
//	bwstress -txn                          in-memory tree
//	bwstress -txn -wal DIR                 durable tree, -kills crash/recover cycles
//	bwstress -txn -wal DIR -shards 4       sharded durable store (cross-shard 2PC)
//	bwstress -txn -server ADDR             live server over the wire
//	bwstress -txn -spawn BIN -wal DIR      child bwserver, SIGKILL + restart cycles
import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/bwtree"
	"repro/internal/bwproto"
	"repro/internal/histcheck"
	"repro/internal/index"
	"repro/internal/shard"
	"repro/internal/txn"
)

type txnCfg struct {
	duration time.Duration
	workers  int
	accounts uint64
	initial  uint64
	server   string // drive a running server
	spawn    string // bwserver binary: spawn, SIGKILL, restart
	walDir   string
	shards   int
	kills    int
	check    bool
	seed     int64
}

func acctKey(i uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, i)
	return b
}

// txnCounters aggregates workload totals across workers and phases.
type txnCounters struct {
	commits   atomic.Uint64
	conflicts atomic.Uint64
	audits    atomic.Uint64
	infra     atomic.Uint64 // commits interrupted by crash/kill
}

func runTxnSoak(cfg txnCfg) {
	if cfg.seed == 0 {
		cfg.seed = time.Now().UnixNano()
	}
	if cfg.accounts < 2 {
		log.Fatal("-txn-accounts must be at least 2")
	}
	log.Printf("txn soak: %d accounts × %d, %d workers, %v, seed %d",
		cfg.accounts, cfg.initial, cfg.workers, cfg.duration, cfg.seed)

	var chk *histcheck.TxnChecker
	if cfg.check {
		chk = histcheck.NewTxnChecker()
		log.Printf("serializability checking on: recording committed transfers")
	}

	var c txnCounters
	switch {
	case cfg.spawn != "":
		runTxnSpawn(cfg, chk, &c)
	case cfg.server != "":
		runTxnServer(cfg, chk, &c)
	default:
		runTxnLocal(cfg, chk, &c)
	}

	log.Printf("txn soak done: %d commits (%d audits), %d conflicts, %d interrupted",
		c.commits.Load(), c.audits.Load(), c.conflicts.Load(), c.infra.Load())
	checkEpoch(chk, "final", log.Fatalf)
}

// checkEpoch verifies and drains the recorded history at a recovery
// boundary (and at exit). Callers must hold the workers quiescent; any
// violation goes through fatalf (the spawn shape reaps its child there).
// See the package comment for why histories are segmented per store
// incarnation.
func checkEpoch(chk *histcheck.TxnChecker, what string, fatalf func(string, ...any)) {
	if chk == nil {
		return
	}
	n, violations := chk.CheckReset()
	for _, v := range violations {
		log.Printf("HISTORY VIOLATION: %v", v)
	}
	if len(violations) > 0 {
		fatalf("txn history (%s) NOT serializable: %d violations over %d transactions", what, len(violations), n)
	}
	log.Printf("history check passed (%s): %d committed transactions, conflict-serializable", what, n)
}

// runTxnLocal covers the in-process shapes: plain tree, durable tree,
// sharded store — the durable ones with -kills crash/recover cycles.
func runTxnLocal(cfg txnCfg, chk *histcheck.TxnChecker, c *txnCounters) {
	kills := cfg.kills
	if cfg.walDir == "" {
		kills = 0 // nothing survives a crash without a log; nothing to verify
	}
	slice := cfg.duration / time.Duration(kills+1)
	total := cfg.accounts * cfg.initial

	for cycle := 0; cycle <= kills; cycle++ {
		store, crash, cleanup := openTxnStore(cfg)
		seedAccounts(store, cfg, chk)
		if sum := sweepSum(store, cfg); sum != total {
			log.Fatalf("cycle %d: sum after open = %d, want %d", cycle, sum, total)
		}

		var stop atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < cfg.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				s := wrapTxn(store.NewSession(), chk)
				defer s.Release()
				txnWorker(s, cfg, int64(cycle*cfg.workers+w), &stop, c)
			}(w)
		}
		time.Sleep(slice)
		if cycle < kills {
			// Power cut mid-workload: in-flight commits fail, acked
			// commits must survive recovery whole.
			crash()
			c.infra.Add(1)
			log.Printf("cycle %d: crashed the log mid-workload", cycle)
		}
		stop.Store(true)
		wg.Wait()
		if cycle == kills {
			// Clean finish: verify before closing too. (The last epoch's
			// history drains in the soak-level final check.)
			if sum := sweepSum(store, cfg); sum != total {
				log.Fatalf("final sum = %d, want %d", sum, total)
			}
		} else {
			// The next cycle recovers and re-stamps; close this
			// incarnation's history epoch while the workers are down.
			checkEpoch(chk, fmt.Sprintf("cycle %d", cycle), log.Fatalf)
		}
		cleanup()
	}
	if cfg.walDir != "" {
		// One last recovery pass proves the close/crash tail replays clean.
		store, _, cleanup := openTxnStore(cfg)
		if sum := sweepSum(store, cfg); sum != total {
			log.Fatalf("post-recovery sum = %d, want %d", sum, total)
		}
		cleanup()
		log.Printf("recovered store verified: sum %d across %d accounts", total, cfg.accounts)
	}
}

// openTxnStore builds the engine for the configured in-process shape and
// returns it with a mid-workload crash hook and a closer.
func openTxnStore(cfg txnCfg) (store *txn.Store, crash func(), cleanup func()) {
	switch {
	case cfg.walDir == "":
		t := bwtree.New(bwtree.DefaultOptions())
		return txn.NewForTree(t), func() {}, func() {}
	case cfg.shards > 1:
		r, err := shard.NewRouter("hash", cfg.shards)
		if err != nil {
			log.Fatal(err)
		}
		st, err := shard.Open(shard.Options{
			Shards: cfg.shards, Router: r,
			Tree:   bwtree.DefaultOptions(),
			WALDir: cfg.walDir, SyncOnCommit: true,
		})
		if err != nil {
			log.Fatalf("open shard store: %v", err)
		}
		rec := st.RecoveryStats()
		log.Printf("shard store open: %d shards, %d replayed, maxTxnID %d", cfg.shards, rec.Replayed, rec.MaxTxnID)
		crash = func() {
			for _, sh := range st.Shards() {
				if err := sh.Durable().Crash(); err != nil {
					log.Fatalf("crash: %v", err)
				}
			}
		}
		return txn.NewForShard(st), crash, func() { st.Close() }
	default:
		d, err := bwtree.OpenDurable(cfg.walDir, bwtree.DurableOptions{SyncOnCommit: true})
		if err != nil {
			log.Fatalf("open durable: %v", err)
		}
		rec := d.RecoveryStats()
		log.Printf("durable tree open: %d replayed, maxTxnID %d, torn=%v", rec.Replayed, rec.MaxTxnID, rec.TornTail)
		crash = func() {
			if err := d.Crash(); err != nil {
				log.Fatalf("crash: %v", err)
			}
		}
		return txn.NewForDurable(d), crash, func() { d.Close() }
	}
}

// runTxnServer drives a live server over the wire; no kill schedule (the
// server is not ours to kill).
func runTxnServer(cfg txnCfg, chk *histcheck.TxnChecker, c *txnCounters) {
	ix, err := bwproto.DialIndex(cfg.server)
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	defer ix.Close()
	seedAccountsNet(ix, cfg, chk)
	total := cfg.accounts * cfg.initial
	if sum, err := sweepSumNet(ix, cfg); err != nil || sum != total {
		log.Fatalf("sum after seed = %d (%v), want %d", sum, err, total)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := wrapTxn(ix.NewTxnSession(), chk)
			defer s.Release()
			txnWorker(s, cfg, int64(w), &stop, c)
		}(w)
	}
	time.Sleep(cfg.duration)
	stop.Store(true)
	wg.Wait()

	if sum, err := sweepSumNet(ix, cfg); err != nil || sum != total {
		log.Fatalf("final sum = %d (%v), want %d", sum, err, total)
	}
	log.Printf("server verified over the wire: sum %d across %d accounts", total, cfg.accounts)
}

// runTxnSpawn is the network-path kill/recover soak: spawn a bwserver
// child on the WAL directory, drive transfers over real sockets, SIGKILL
// the child mid-workload, restart it, and re-verify the invariant over
// the wire after every recovery. Workers reconnect through kills; a
// commit in flight at the kill has unknown outcome, which the invariant
// absorbs — a transfer conserves the sum whether or not it applied, as
// long as it applied atomically.
func runTxnSpawn(cfg txnCfg, chk *histcheck.TxnChecker, c *txnCounters) {
	if cfg.walDir == "" {
		log.Fatal("-spawn requires -wal DIR (a volatile child forgets everything the kill is meant to test)")
	}
	addr := freeAddr()
	start := func() *exec.Cmd {
		cmd := exec.Command(cfg.spawn,
			"-addr", addr,
			"-shards", strconv.Itoa(max(cfg.shards, 1)),
			"-wal", cfg.walDir)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatalf("spawn %s: %v", cfg.spawn, err)
		}
		return cmd
	}
	waitUp := func() *bwproto.NetIndex {
		deadline := time.Now().Add(20 * time.Second)
		for {
			ix, err := bwproto.DialIndex(addr)
			if err == nil {
				return ix
			}
			if time.Now().After(deadline) {
				log.Fatalf("server at %s did not come up: %v", addr, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	cmd := start()
	// log.Fatal skips defers, so every fatal path reaps the child first —
	// a leaked server would hold the WAL directory and the port.
	fatal := func(format string, a ...any) {
		if cmd != nil && cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
		log.Fatalf(format, a...)
	}
	defer func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()
	ix := waitUp()
	seedAccountsNet(ix, cfg, chk)
	total := cfg.accounts * cfg.initial
	if sum, err := sweepSumNet(ix, cfg); err != nil || sum != total {
		fatal("sum after seed = %d (%v), want %d", sum, err, total)
	}
	ix.Close()

	// gate pauses the workers during invariant sweeps: an unvalidated
	// 64-read sweep racing live transfers would see money in flight and
	// misreport the total (the workers' own audit transactions are the
	// online probe; sweeps are quiescent ones).
	var gate sync.RWMutex
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			txnNetWorker(addr, cfg, int64(w), &stop, &gate, c, chk)
		}(w)
	}

	kills := max(cfg.kills, 1)
	slice := cfg.duration / time.Duration(kills+1)
	for k := 0; k < kills; k++ {
		time.Sleep(slice)
		if err := cmd.Process.Kill(); err != nil {
			fatal("kill: %v", err)
		}
		cmd.Wait()
		c.infra.Add(1)
		log.Printf("kill %d/%d: SIGKILLed the server mid-workload", k+1, kills)
		// Pause the workers at their next op boundary BEFORE restarting:
		// with the server dead and the gate held, the recorded history is
		// frozen at exactly the old incarnation's commits, so the epoch
		// can be checked and drained before any post-recovery commit
		// (whose re-stamped versions would alias the old epoch's) lands.
		gate.Lock()
		checkEpoch(chk, fmt.Sprintf("kill %d", k+1), fatal)
		cmd = start()
		ix = waitUp()
		// Invariant re-verified over the wire immediately after every
		// recovery, with the workers still paused.
		sum, err := sweepSumNet(ix, cfg)
		gate.Unlock()
		if err != nil {
			fatal("kill %d: post-recovery sweep: %v", k+1, err)
		}
		if sum != total {
			fatal("kill %d: post-recovery sum = %d, want %d (torn commit survived)", k+1, sum, total)
		}
		log.Printf("kill %d/%d: recovered, sum verified over the wire", k+1, kills)
		ix.Close()
	}
	time.Sleep(slice)
	stop.Store(true)
	wg.Wait()

	ix = waitUp()
	defer ix.Close()
	if sum, err := sweepSumNet(ix, cfg); err != nil || sum != total {
		fatal("final sum = %d (%v), want %d", sum, err, total)
	}
	log.Printf("spawned server survived %d kills: sum %d across %d accounts", kills, total, cfg.accounts)
}

// txnWorker runs transfers (and periodic full-ledger audits) until
// stopped. Infrastructure errors end the worker: in the crash shapes
// they mean the log is gone and the phase is over.
func txnWorker(s index.TxnSession, cfg txnCfg, seed int64, stop *atomic.Bool, c *txnCounters) {
	rng := rand.New(rand.NewSource(cfg.seed ^ (seed+1)*0x7E3779B97F4A7C15))
	for i := 0; !stop.Load(); i++ {
		var err error
		if i%256 == 255 {
			err = auditOnce(s, cfg, c)
		} else {
			err = transferOnce(s, rng, cfg, c)
		}
		if err != nil {
			if !stop.Load() {
				c.infra.Add(1)
			}
			return
		}
	}
}

// txnNetWorker is txnWorker for the spawn shape: it owns its connection
// and re-dials through server kills instead of giving up.
func txnNetWorker(addr string, cfg txnCfg, seed int64, stop *atomic.Bool, gate *sync.RWMutex, c *txnCounters, chk *histcheck.TxnChecker) {
	rng := rand.New(rand.NewSource(cfg.seed ^ (seed+1)*0x7E3779B97F4A7C15))
	var ix *bwproto.NetIndex
	var s index.TxnSession
	release := func() {
		if s != nil {
			s.Release()
			s = nil
		}
		if ix != nil {
			ix.Close()
			ix = nil
		}
	}
	defer release()
	for i := 0; !stop.Load(); i++ {
		gate.RLock()
		if s == nil {
			var err error
			ix, err = bwproto.DialIndex(addr)
			if err != nil {
				gate.RUnlock()
				time.Sleep(25 * time.Millisecond)
				continue
			}
			s = wrapTxn(ix.NewTxnSession(), chk)
		}
		var err error
		if i%256 == 255 {
			err = auditOnce(s, cfg, c)
		} else {
			err = transferOnce(s, rng, cfg, c)
		}
		gate.RUnlock()
		if err != nil {
			// The server died under us (or is dying); the in-flight
			// commit's outcome is unknown. Drop the connection and
			// reconnect — atomicity is verified by the sweeps.
			c.infra.Add(1)
			release()
			time.Sleep(25 * time.Millisecond)
		}
	}
}

// transferOnce moves a random amount between two random accounts.
func transferOnce(s index.TxnSession, rng *rand.Rand, cfg txnCfg, c *txnCounters) error {
	from := uint64(rng.Int63n(int64(cfg.accounts)))
	to := uint64(rng.Int63n(int64(cfg.accounts)))
	if from == to {
		return nil
	}
	fk, tk := acctKey(from), acctKey(to)
	fv, fver, ok1, err1 := s.GetVersion(fk)
	tv, tver, ok2, err2 := s.GetVersion(tk)
	if err1 != nil {
		return err1
	}
	if err2 != nil {
		return err2
	}
	if !ok1 || !ok2 {
		return fmt.Errorf("account missing: %d=%v %d=%v", from, ok1, to, ok2)
	}
	amount := 1 + uint64(rng.Int63n(int64(cfg.initial/10+1)))
	if fv < amount {
		return nil
	}
	res, err := s.CommitTxn(
		[]index.TxnRead{{Key: fk, Ver: fver}, {Key: tk, Ver: tver}},
		[]index.TxnWrite{
			{Op: index.TxnPut, Key: fk, Value: fv - amount},
			{Op: index.TxnPut, Key: tk, Value: tv + amount},
		},
	)
	if err != nil {
		return err
	}
	if res.Status == index.TxnCommitted {
		c.commits.Add(1)
	} else {
		c.conflicts.Add(1)
	}
	return nil
}

// auditOnce commits a read-only transaction over the whole ledger. A
// committed audit passed OCC validation, so the versions it read
// coexisted at the commit point — the sum must be exact even while
// transfers race.
func auditOnce(s index.TxnSession, cfg txnCfg, c *txnCounters) error {
	reads := make([]index.TxnRead, 0, cfg.accounts)
	var sum uint64
	for i := uint64(0); i < cfg.accounts; i++ {
		k := acctKey(i)
		v, ver, found, err := s.GetVersion(k)
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("audit: account %d missing", i)
		}
		sum += v
		reads = append(reads, index.TxnRead{Key: k, Ver: ver})
	}
	res, err := s.CommitTxn(reads, nil)
	if err != nil {
		return err
	}
	if res.Status != index.TxnCommitted {
		c.conflicts.Add(1)
		return nil // racing transfers invalidated the snapshot; fine
	}
	c.commits.Add(1)
	c.audits.Add(1)
	if want := cfg.accounts * cfg.initial; sum != want {
		log.Fatalf("AUDIT FAILED: serializable snapshot sums to %d, want %d", sum, want)
	}
	return nil
}

// seedAccounts populates the ledger through one transaction if account 0
// is absent (a recovered store keeps its balances).
func seedAccounts(store *txn.Store, cfg txnCfg, chk *histcheck.TxnChecker) {
	s := wrapTxn(store.NewSession(), chk)
	defer s.Release()
	seedThrough(s, cfg)
}

func seedAccountsNet(ix *bwproto.NetIndex, cfg txnCfg, chk *histcheck.TxnChecker) {
	s := wrapTxn(ix.NewTxnSession(), chk)
	defer s.Release()
	seedThrough(s, cfg)
}

func seedThrough(s index.TxnSession, cfg txnCfg) {
	if _, _, found, err := s.GetVersion(acctKey(0)); err != nil {
		log.Fatalf("seed probe: %v", err)
	} else if found {
		return
	}
	writes := make([]index.TxnWrite, 0, cfg.accounts)
	reads := make([]index.TxnRead, 0, cfg.accounts)
	for i := uint64(0); i < cfg.accounts; i++ {
		writes = append(writes, index.TxnWrite{Op: index.TxnPut, Key: acctKey(i), Value: cfg.initial})
		reads = append(reads, index.TxnRead{Key: acctKey(i), Ver: 0})
	}
	res, err := s.CommitTxn(reads, writes)
	if err != nil || res.Status != index.TxnCommitted {
		log.Fatalf("seed commit: %v %v", res.Status, err)
	}
	log.Printf("seeded %d accounts × %d", cfg.accounts, cfg.initial)
}

// sweepSum re-reads every account through a fresh session (quiescent
// callers only).
func sweepSum(store *txn.Store, cfg txnCfg) uint64 {
	s := store.NewSession()
	defer s.Release()
	sum, err := sweepThrough(s, cfg)
	if err != nil {
		log.Fatalf("sweep: %v", err)
	}
	return sum
}

func sweepSumNet(ix *bwproto.NetIndex, cfg txnCfg) (uint64, error) {
	s := ix.NewTxnSession()
	defer s.Release()
	return sweepThrough(s, cfg)
}

func sweepThrough(s index.TxnSession, cfg txnCfg) (uint64, error) {
	var sum uint64
	for i := uint64(0); i < cfg.accounts; i++ {
		v, _, found, err := s.GetVersion(acctKey(i))
		if err != nil {
			return 0, fmt.Errorf("account %d: %w", i, err)
		}
		if !found {
			return 0, fmt.Errorf("account %d missing", i)
		}
		sum += v
	}
	return sum, nil
}

// wrapTxn attaches the serializability recorder when -check is on.
func wrapTxn(s index.TxnSession, chk *histcheck.TxnChecker) index.TxnSession {
	if chk == nil {
		return s
	}
	return chk.Wrap(s)
}

// freeAddr reserves a loopback port by binding and releasing it.
func freeAddr() string {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}
