// Named-workload mode: -workload runs one of the YCSB mixes from
// internal/ycsb (the same generators the bwbench experiments use) against
// an in-process tree instead of the random insert/delete/update/lookup
// soak. The scan-heavy mix (-workload e) is the scan-pipelining path: 95%
// range scans that cross leaf boundaries and exercise the right-sibling
// prefetch, with -dist selecting Zipfian or uniform request skew.
//
// Verification is invariant-based rather than mirror-based (the Zipfian
// streams share keys across workers, so no worker owns exact state):
// reads and updates target loaded population keys and must hit; every
// scan's output must be strictly ascending and start at or after its
// start key; and a final full sweep checks global order plus the presence
// of every population key.
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/bwtree"
	"repro/internal/ycsb"
)

// runYcsbSoak loads a population of Email keys, drives the named mix for
// duration across workers, and returns false if any invariant broke.
func runYcsbSoak(t *bwtree.Tree, w ycsb.Workload, dist ycsb.RequestDist, duration time.Duration, workers, keys int, seed uint64) bool {
	ks := ycsb.NewKeySet(ycsb.Email, keys)
	var failed atomic.Bool
	fail := func(worker int, format string, args ...any) {
		log.Printf("worker %d: %s", worker, fmt.Sprintf(format, args...))
		failed.Store(true)
	}

	// Load phase: the whole population via Insert-only streams, so the
	// run phase's reads and updates have a known-present target set.
	var wg sync.WaitGroup
	loadStart := time.Now()
	for wid := 0; wid < workers; wid++ {
		n := keys / workers
		if wid < keys%workers {
			n++
		}
		wg.Add(1)
		go func(wid, n int) {
			defer wg.Done()
			s := t.NewSession()
			defer s.Release()
			stream := ycsb.NewStreamDist(ycsb.InsertOnly, ks, wid, seed+uint64(wid), dist)
			for i := 0; i < n; i++ {
				op := stream.Next()
				s.Insert(op.Key, op.Value)
			}
		}(wid, n)
	}
	wg.Wait()
	log.Printf("loaded %d %s keys in %v", keys, ycsb.Email, time.Since(loadStart).Round(time.Millisecond))

	// Timed run phase.
	var stop atomic.Bool
	var ops, scanned atomic.Uint64
	timer := time.AfterFunc(duration, func() { stop.Store(true) })
	defer timer.Stop()
	runStart := time.Now()
	for wid := 0; wid < workers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			s := t.NewSession()
			defer s.Release()
			stream := ycsb.NewStreamDist(w, ks, wid, seed^uint64(wid)*0x9E3779B97F4A7C15, dist)
			var out []uint64
			var prev []byte
			var n uint64
			for !stop.Load() && !failed.Load() {
				op := stream.Next()
				switch op.Kind {
				case ycsb.OpRead:
					if out = s.Lookup(op.Key, out[:0]); len(out) == 0 {
						fail(wid, "read missed population key %q", op.Key)
						return
					}
				case ycsb.OpUpdate:
					if !s.Update(op.Key, op.Value) {
						fail(wid, "update missed population key %q", op.Key)
						return
					}
				case ycsb.OpInsert:
					// Extra keys may collide with the population; either
					// outcome is legal, the final sweep checks order.
					s.Insert(op.Key, op.Value)
				case ycsb.OpScan:
					prev = append(prev[:0], op.Key...)
					first := true
					got := s.Scan(op.Key, op.ScanLen, func(k []byte, v uint64) bool {
						if c := bytes.Compare(k, prev); c < 0 || (c == 0 && !first) {
							fail(wid, "scan from %q out of order: %q after %q", op.Key, k, prev)
							return false
						}
						first = false
						prev = append(prev[:0], k...)
						return true
					})
					if got == 0 && !failed.Load() {
						// The start key is a loaded population key, so the
						// scan must visit at least it.
						fail(wid, "scan from population key %q visited nothing", op.Key)
						return
					}
					scanned.Add(uint64(got))
				}
				n++
			}
			ops.Add(n)
		}(wid)
	}
	wg.Wait()
	elapsed := time.Since(runStart)
	log.Printf("%s/%s: %d ops in %v (%.3f Mops/s), %d pairs scanned",
		w, dist, ops.Load(), elapsed.Round(time.Millisecond),
		float64(ops.Load())/elapsed.Seconds()/1e6, scanned.Load())

	if failed.Load() {
		return false
	}

	// Final sweep: one full scan must be strictly ascending and contain
	// every population key (inserts only ever add; nothing deletes).
	s := t.NewSession()
	defer s.Release()
	var prev []byte
	total := 0
	pop := make(map[string]bool, len(ks.Keys))
	for _, k := range ks.Keys {
		pop[string(k)] = true
	}
	s.Scan([]byte{0}, 1<<40, func(k []byte, v uint64) bool {
		if prev != nil && bytes.Compare(k, prev) <= 0 {
			fail(-1, "final sweep out of order: %q after %q", k, prev)
			return false
		}
		prev = append(prev[:0], k...)
		delete(pop, string(k))
		total++
		return true
	})
	if len(pop) > 0 {
		fail(-1, "final sweep missing %d of %d population keys", len(pop), keys)
	}
	log.Printf("final sweep: %d keys, order and population presence verified", total)
	return !failed.Load()
}
