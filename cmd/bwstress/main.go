// Command bwstress soaks the OpenBw-Tree under a concurrent mixed
// workload with periodic invariant validation — the long-running
// confidence test for the lock-free machinery:
//
//	bwstress -duration 60s -workers 8 -keyspace 100000
//
// Workers run a random insert/delete/update/lookup/scan mix over a shared
// key space while tracking, per worker, a disjoint slice of keys whose
// state they own exclusively and can therefore verify exactly (the mirror
// in mirror.go). After the workers stop, the whole tree is swept against
// the union of the mirrors, so every mode ends with an exact
// tree-vs-expectation comparison. Any inconsistency exits non-zero.
//
// With -batch N, inserts, deletes, and lookups are queued and flushed
// through the amortized-epoch batch API (InsertBatch/DeleteBatch/
// LookupBatch) in windows of N, with the same mirror verification;
// updates and scans keep interleaving single-op.
//
// With -check, every operation is additionally recorded through the
// history checker (internal/histcheck) and the merged history is verified
// against sequential semantics at exit — catching cross-worker anomalies
// the per-worker mirrors cannot see. Recording is memory-bound, so -check
// caps the run at -check-ops total operations instead of running for the
// full -duration.
//
// With -wal DIR, the tree runs under the durability layer (bwtree.Durable,
// SyncOnCommit) and the soak becomes a crash test: at a random moment the
// log "loses power" (Durable.Crash), in-flight commits fail, the directory
// is optionally damaged with a torn tail, and the tree is recovered with
// OpenDurable. Every acknowledged operation must be present after
// recovery; each worker's single in-flight operation may have either
// happened or not, but nothing in between.
package main

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/bwtree"
	"repro/internal/bwproto"
	"repro/internal/histcheck"
	"repro/internal/index"
	"repro/internal/wal"
	"repro/internal/ycsb"
)

// session is the raw operation surface in the in-memory modes; both
// *bwtree.Session and the checker's recording session satisfy it,
// including the batch entry points.
type session interface {
	Insert(key []byte, value uint64) bool
	Delete(key []byte, value uint64) bool
	Update(key []byte, value uint64) bool
	Lookup(key []byte, out []uint64) []uint64
	Scan(start []byte, n int, visit func(key []byte, value uint64) bool) int
	InsertBatch(keys [][]byte, vals []uint64, ok []bool) []bool
	DeleteBatch(keys [][]byte, vals []uint64, ok []bool) []bool
	LookupBatch(keys [][]byte, visit func(i int, vals []uint64))
	Release()
}

// stressSession is the surface the worker loop drives: the in-memory
// session adapted with nil errors, or a *bwtree.DurableSession whose
// errors signal the simulated crash.
type stressSession interface {
	Insert(key []byte, value uint64) (bool, error)
	Delete(key []byte, value uint64) (bool, error)
	Update(key []byte, value uint64) (bool, error)
	Lookup(key []byte, out []uint64) []uint64
	Scan(start []byte, n int, visit func(key []byte, value uint64) bool) int
	Release()
}

// plainSession adapts the in-memory session to stressSession.
type plainSession struct{ s session }

func (p plainSession) Insert(k []byte, v uint64) (bool, error) { return p.s.Insert(k, v), nil }
func (p plainSession) Delete(k []byte, v uint64) (bool, error) { return p.s.Delete(k, v), nil }
func (p plainSession) Update(k []byte, v uint64) (bool, error) { return p.s.Update(k, v), nil }
func (p plainSession) Lookup(k []byte, out []uint64) []uint64  { return p.s.Lookup(k, out) }
func (p plainSession) Scan(start []byte, n int, visit func([]byte, uint64) bool) int {
	return p.s.Scan(start, n, visit)
}
func (p plainSession) Release() { p.s.Release() }

func key64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func main() {
	duration := flag.Duration("duration", 30*time.Second, "soak duration")
	workers := flag.Int("workers", 8, "worker goroutines")
	keyspace := flag.Uint64("keyspace", 100000, "shared keys per worker slice")
	leafSize := flag.Int("leaf", 32, "leaf node size (small sizes maximize SMO churn)")
	debugAddr := flag.String("debug-addr", "", "serve expvar/pprof/latency debug endpoints on this address (enables latency histograms and SMO tracing)")
	batch := flag.Int("batch", 0, "route inserts/deletes/lookups through the batch API in windows of this size (0 = single-op)")
	check := flag.Bool("check", false, "record every op and verify the merged history for linearizability at exit")
	checkOps := flag.Uint64("check-ops", 400_000, "total operation budget with -check (recorded histories must fit in memory)")
	serverAddr := flag.String("server", "", "drive a running bwserver at this address over the wire instead of an in-process tree")
	walDir := flag.String("wal", "", "run under the durability layer in this directory and crash/recover mid-soak")
	seed := flag.Int64("seed", 0, "crash-timing seed for -wal (0 = derive from time)")
	traceOut := flag.String("trace-out", "", "write sampled phase traces as Chrome trace-event JSON to this file at exit (enables deep tracing)")
	sampleEvery := flag.Int("phase-sample", 64, "with deep tracing on, phase-sample every Nth operation per worker")
	stallSecs := flag.Int("stall-secs", 10, "autopsy and fail if the global op counter plateaus for this many seconds (0 = off)")
	txnMode := flag.Bool("txn", false, "run the bank-transfer transaction soak instead of the mixed workload (see txn.go)")
	txnAccounts := flag.Uint64("txn-accounts", 64, "txn mode: number of bank accounts")
	txnInitial := flag.Uint64("txn-initial", 1000, "txn mode: starting balance per account")
	txnShards := flag.Int("shards", 0, "txn mode: shard count for -wal (0/1 = single durable tree) and -spawn")
	txnKills := flag.Int("kills", 1, "txn mode: crash/recover (-wal) or SIGKILL/restart (-spawn) cycles during the soak")
	txnSpawn := flag.String("spawn", "", "txn mode: path to a bwserver binary; spawn it on -wal, drive it over sockets, and kill/restart it mid-soak")
	workload := flag.String("workload", "", "run a named YCSB mix (a|b|c|e|insert) over Email keys instead of the random soak (see ycsb.go)")
	distName := flag.String("dist", "zipfian", "request distribution for -workload: zipfian or uniform")
	workloadKeys := flag.Int("workload-keys", 200_000, "population size for -workload")
	flag.Parse()

	if *txnMode {
		runTxnSoak(txnCfg{
			duration: *duration,
			workers:  *workers,
			accounts: *txnAccounts,
			initial:  *txnInitial,
			server:   *serverAddr,
			spawn:    *txnSpawn,
			walDir:   *walDir,
			shards:   *txnShards,
			kills:    *txnKills,
			check:    *check,
			seed:     *seed,
		})
		return
	}
	if *txnSpawn != "" {
		log.Fatal("-spawn requires -txn")
	}

	if *walDir != "" && (*batch > 1 || *check) {
		log.Fatal("-wal cannot be combined with -batch or -check")
	}
	if *serverAddr != "" && (*walDir != "" || *debugAddr != "" || *traceOut != "") {
		// Over the wire, durability, the debug surface, and phase traces
		// belong to the server process (bwserver flags), not the client rig.
		log.Fatal("-server cannot be combined with -wal, -debug-addr, or -trace-out")
	}

	opts := bwtree.DefaultOptions()
	opts.LeafNodeSize = *leafSize
	opts.InnerNodeSize = *leafSize / 2
	opts.LeafChainLength = 8
	opts.InnerChainLength = 2
	opts.LeafMergeSize = *leafSize / 4
	opts.InnerMergeSize = *leafSize / 8
	if *debugAddr != "" {
		opts.LatencyHistograms = true
		opts.TraceRingSize = 1024
	}
	if *debugAddr != "" || *traceOut != "" {
		// Deep-path tracing: sampled phase traces (chain walks, CaS
		// retries, fsync waits in wal mode) plus the always-on flight
		// recorder behind /debug/flightrec and the anomaly dumps.
		opts.PhaseSampleEvery = *sampleEvery
		opts.PhaseTraceBuffer = 4096
		opts.FlightRecorderSize = 512
		opts.FlightLatencyThreshold = 250 * time.Millisecond
	}

	if *workload != "" {
		wk, err := ycsb.ParseWorkload(*workload)
		if err != nil {
			log.Fatal(err)
		}
		dist, err := ycsb.ParseDist(*distName)
		if err != nil {
			log.Fatal(err)
		}
		if *walDir != "" || *serverAddr != "" || *batch > 1 || *check {
			log.Fatal("-workload cannot be combined with -wal, -server, -batch, or -check")
		}
		idx := index.NewBwTreeWith("OpenBwTree", opts)
		defer idx.Close()
		wt := idx.(index.BwBacked).Tree()
		if *debugAddr != "" {
			srv, err := bwtree.ServeDebug(wt, *debugAddr)
			if err != nil {
				log.Fatalf("debug server: %v", err)
			}
			defer srv.Close()
			log.Printf("debug endpoints at http://%s/debug", srv.Addr())
		}
		sd := uint64(*seed)
		if sd == 0 {
			sd = uint64(time.Now().UnixNano())
		}
		if !runYcsbSoak(wt, wk, dist, *duration, *workers, *workloadKeys, sd) {
			os.Exit(1)
		}
		return
	}

	var t *bwtree.Tree
	var d *bwtree.Durable
	var checked *histcheck.Checked
	var newSession func() stressSession
	var pairs pairSource

	if *serverAddr != "" {
		ix, err := bwproto.DialIndex(*serverAddr)
		if err != nil {
			log.Fatalf("server: %v", err)
		}
		defer ix.Close()
		base := func() session { return ix.NewSession().(session) }
		if *check {
			checked = histcheck.Wrap(ix, false)
			base = func() session { return checked.NewSession().(session) }
			log.Printf("history checking on: capped at %d ops", *checkOps)
		}
		newSession = func() stressSession { return plainSession{base()} }
		// The final sweep scans the server over the wire; mirrors are also
		// preloaded that way below, in case the server recovered old data.
		pairs = func(visit func(key []byte, value uint64)) {
			s := ix.NewSession()
			defer s.Release()
			s.Scan(nil, 1<<40, func(k []byte, v uint64) bool { visit(k, v); return true })
		}
		log.Printf("driving server at %s", *serverAddr)
	} else if *walDir != "" {
		var err error
		d, err = bwtree.OpenDurable(*walDir, bwtree.DurableOptions{Tree: opts, SyncOnCommit: true})
		if err != nil {
			log.Fatalf("open durable: %v", err)
		}
		t = d.Tree()
		pairs = treePairs(t)
		newSession = func() stressSession { return d.NewSession() }
		rec := d.RecoveryStats()
		log.Printf("durable tree open: %d snapshot keys, %d replayed, torn=%v", rec.SnapshotKeys, rec.Replayed, rec.TornTail)
	} else {
		idx := index.NewBwTreeWith("OpenBwTree", opts)
		defer idx.Close()
		t = idx.(index.BwBacked).Tree()
		pairs = treePairs(t)
		base := func() session { return t.NewSession() }
		if *check {
			checked = histcheck.Wrap(idx, false)
			// The recording session implements the batch surface natively; the
			// assertion converts past the narrower index.Session return type.
			base = func() session { return checked.NewSession().(session) }
			log.Printf("history checking on: capped at %d ops", *checkOps)
		}
		// Workers unwrap the adapter to reach the raw batch surface when
		// -batch is set.
		newSession = func() stressSession { return plainSession{base()} }
	}

	if *debugAddr != "" {
		var srv *bwtree.DebugServer
		var err error
		if d != nil {
			// wal mode gets the extended surface: WAL queue depth,
			// group-commit batch sizes, checkpoint age.
			srv, err = bwtree.ServeDurableDebug(d, *debugAddr)
		} else {
			srv, err = bwtree.ServeDebug(t, *debugAddr)
		}
		if err != nil {
			log.Fatalf("debug server: %v", err)
		}
		defer srv.Close()
		log.Printf("debug endpoints at http://%s/debug (stats, latency, trace, flightrec, phasetrace, metrics, pprof)", srv.Addr())
	}

	var stop atomic.Bool
	var failed atomic.Bool
	var ops atomic.Uint64
	var wg sync.WaitGroup
	fail := func(w int, err error) {
		log.Printf("worker %d: %v", w, err)
		failed.Store(true)
	}

	mirrors := make([]*mirror, *workers)
	for w := 0; w < *workers; w++ {
		mirrors[w] = newMirror(w)
	}
	// curKeys lets the stall autopsy dump the descent path of whatever
	// key each worker was touching when progress stopped.
	curKeys := make([]atomic.Uint64, *workers)
	if d != nil || *serverAddr != "" {
		// A -wal directory (or a server that recovered one) may hold a
		// previous run's data; seed each worker's mirror with the recovered
		// keys of its congruence class so verification starts from the true
		// state.
		if n, err := preloadMirrors(pairs, mirrors); err != nil {
			log.Fatalf("preload mirrors: %v", err)
		} else if n > 0 {
			if checked != nil {
				log.Fatalf("-check requires an empty server, found %d preexisting keys", n)
			}
			log.Printf("mirrors preloaded with %d recovered keys", n)
		}
	}
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int, m *mirror) {
			defer wg.Done()
			ss := newSession()
			defer ss.Release()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			// Each worker owns keys ≡ w (mod workers) and mirrors their
			// exact state.
			base := uint64(w)
			nw := uint64(*workers)
			var out []uint64

			// Batch mode: queue inserts/deletes/lookups — at most one pending
			// op per key, so the mirror's expectation per entry is exact —
			// and flush through the batch API when the window fills.
			var bq *batchQueue
			if *batch > 1 {
				bq = newBatchQueue(ss.(plainSession).s, m, *batch)
			}

			for !stop.Load() {
				n := ops.Add(1)
				if *check && n > *checkOps {
					break
				}
				k := base + uint64(rng.Intn(int(*keyspace)))*nw
				curKeys[w].Store(k)
				switch rng.Intn(6) {
				case 0:
					v := rng.Uint64()
					if bq != nil {
						if err := bq.enqueue(k, v, 'I'); err != nil {
							fail(w, err)
							return
						}
						continue
					}
					ok, err := ss.Insert(key64(k), v)
					if err != nil {
						m.markPending('I', k, v)
						reportCrash(w, err, &failed)
						return
					}
					if cerr := m.applyInsert(k, v, ok); cerr != nil {
						fail(w, cerr)
						return
					}
				case 1:
					if bq != nil {
						if err := bq.enqueue(k, m.valueOr(k, 0), 'D'); err != nil {
							fail(w, err)
							return
						}
						continue
					}
					ok, err := ss.Delete(key64(k), m.valueOr(k, 0))
					if err != nil {
						m.markPending('D', k, 0)
						reportCrash(w, err, &failed)
						return
					}
					if cerr := m.applyDelete(k, ok); cerr != nil {
						fail(w, cerr)
						return
					}
				case 2:
					v := rng.Uint64()
					ok, err := ss.Update(key64(k), v)
					if err != nil {
						m.markPending('U', k, v)
						reportCrash(w, err, &failed)
						return
					}
					if cerr := m.applyUpdate(k, v, ok); cerr != nil {
						fail(w, cerr)
						return
					}
				case 3, 4:
					if bq != nil {
						if err := bq.enqueue(k, 0, 'L'); err != nil {
							fail(w, err)
							return
						}
						continue
					}
					out = ss.Lookup(key64(k), out[:0])
					if cerr := m.checkLookup(k, out); cerr != nil {
						fail(w, cerr)
						return
					}
				default:
					var prev uint64
					first := true
					ss.Scan(key64(k), 32, func(kk []byte, v uint64) bool {
						cur := binary.BigEndian.Uint64(kk)
						if !first && cur <= prev {
							fail(w, fmt.Errorf("scan order violation %d after %d", cur, prev))
							return false
						}
						prev, first = cur, false
						return true
					})
					if failed.Load() {
						return
					}
				}
			}
			// Drain the batch window so the mirror is exact for the final
			// sweep (previously pending ops at loop end went unverified).
			if bq != nil {
				if err := bq.flush(); err != nil {
					fail(w, err)
				}
			}
		}(w, mirrors[w])
	}

	// In wal mode, schedule the power failure at a random point in the
	// middle half of the run.
	crashSeed := *seed
	if crashSeed == 0 {
		crashSeed = time.Now().UnixNano()
	}
	crashRng := rand.New(rand.NewSource(crashSeed))
	var cpDone chan struct{}
	if d != nil {
		delay := *duration/4 + time.Duration(crashRng.Int63n(int64(*duration/2)))
		log.Printf("crash scheduled at t=%v (seed %d)", delay.Round(time.Millisecond), crashSeed)
		go func() {
			time.Sleep(delay)
			if err := d.Crash(); err != nil {
				log.Printf("crash: %v", err)
				failed.Store(true)
			}
			stop.Store(true)
		}()
		// Checkpoints race the workers and the crash; one may be cut off
		// mid-walk, which must be harmless. The goroutine is joined via
		// cpDone before d.Close() so no checkpoint is in flight when the
		// tree is torn down.
		cpDone = make(chan struct{})
		go func() {
			defer close(cpDone)
			tick := time.NewTicker(time.Second)
			defer tick.Stop()
			for range tick.C {
				if stop.Load() {
					return
				}
				if lsn, err := d.Checkpoint(); err == nil {
					log.Printf("checkpoint at LSN %d", lsn)
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	start := time.Now()
	ticker := time.NewTicker(5 * time.Second)
	defer ticker.Stop()
	// Stall detector (ported from the core reproducer's test scaffolding):
	// if the global op counter plateaus, the tree is wedged — every worker
	// is restarting against some poisoned state. Autopsy instead of
	// spinning silently until the deadline: note the anomaly (which also
	// force-dumps the flight recorder behind /debug/flightrec), dump each
	// worker's descent path for the key it was on, and fail.
	stallTick := time.NewTicker(time.Second)
	defer stallTick.Stop()
	lastOps, stalls := uint64(0), 0
loop:
	for time.Since(start) < *duration && !failed.Load() {
		select {
		case <-done:
			// Workers exhausted the -check op budget or the crash fired.
			break loop
		case <-stallTick.C:
			if *stallSecs <= 0 || stop.Load() {
				continue
			}
			if cur := ops.Load(); cur != lastOps {
				lastOps, stalls = cur, 0
				continue
			}
			if stalls++; stalls < *stallSecs {
				continue
			}
			if t != nil {
				log.Printf("STALL: no op progress for %ds; stats=%+v", *stallSecs, t.Stats())
				t.AnomalyNote(fmt.Sprintf("bwstress: op counter plateaued for %ds", *stallSecs))
				for w := 0; w < *workers; w++ {
					k := curKeys[w].Load()
					fmt.Fprintf(os.Stderr, "worker %d stuck on key %d:\n%s", w, k,
						bwtree.FormatPath(t.DescendPath(key64(k))))
				}
			} else {
				log.Printf("STALL: no op progress for %ds against %s", *stallSecs, *serverAddr)
			}
			failed.Store(true)
		case <-ticker.C:
			if t == nil {
				log.Printf("t=%v ops=%d (%.2f Mops/s) over the wire",
					time.Since(start).Round(time.Second), ops.Load(),
					float64(ops.Load())/time.Since(start).Seconds()/1e6)
				continue
			}
			st := t.Stats()
			log.Printf("t=%v ops=%d (%.2f Mops/s) aborts=%d splits=%d merges=%d consolidations=%d",
				time.Since(start).Round(time.Second), ops.Load(),
				float64(ops.Load())/time.Since(start).Seconds()/1e6,
				st.Aborts, st.Splits, st.Merges, st.Consolidations)
		}
	}
	stop.Store(true)
	<-done

	// Drain sampled traces before any teardown (the wal path closes the
	// tree that recorded them).
	var traces []bwtree.OpTrace
	if *traceOut != "" {
		traces = t.PhaseTraces()
	}

	if failed.Load() {
		fmt.Println("FAILED: inconsistency detected")
		os.Exit(1)
	}

	if d != nil {
		<-cpDone // join the checkpoint goroutine before teardown
		// Recover and verify against the recovered tree instead.
		if err := d.Close(); err != nil {
			fmt.Printf("FAILED: close after crash: %v\n", err)
			os.Exit(1)
		}
		if crashRng.Intn(2) == 0 {
			// Half the runs also damage the log the way a torn sector would.
			junk := make([]byte, 1+crashRng.Intn(64))
			crashRng.Read(junk)
			if err := appendGarbageToLastSegment(*walDir, junk); err != nil {
				log.Printf("torn-tail injection skipped: %v", err)
			} else {
				log.Printf("torn-tail injection: %d junk bytes appended", len(junk))
			}
		}
		d2, err := bwtree.OpenDurable(*walDir, bwtree.DurableOptions{Tree: opts})
		if err != nil {
			fmt.Printf("FAILED: recovery: %v\n", err)
			os.Exit(1)
		}
		defer d2.Close()
		rec := d2.RecoveryStats()
		log.Printf("recovered: %d snapshot keys, %d replayed (LSN %d), torn=%v, load=%v replay=%v",
			rec.SnapshotKeys, rec.Replayed, rec.LastLSN, rec.TornTail, rec.SnapshotLoad.Round(time.Millisecond), rec.Replay.Round(time.Millisecond))
		t = d2.Tree()
		pairs = treePairs(t)
	}

	if t != nil {
		if err := t.Validate(); err != nil {
			fmt.Printf("FAILED: final validation: %v\n", err)
			os.Exit(1)
		}
	}
	if errs := sweepVerify(pairs, mirrors); len(errs) > 0 {
		for i, err := range errs {
			if i == 20 {
				fmt.Printf("  ... %d more\n", len(errs)-20)
				break
			}
			fmt.Printf("  mismatch: %v\n", err)
		}
		fmt.Printf("FAILED: final sweep found %d mismatches\n", len(errs))
		os.Exit(1)
	}
	if checked != nil {
		vs := checked.Check()
		for i, v := range vs {
			if i == 20 {
				fmt.Printf("  ... %d more\n", len(vs)-20)
				break
			}
			fmt.Printf("  violation: %v\n", v)
		}
		if len(vs) > 0 {
			fmt.Printf("FAILED: history check found %d violations over %d recorded ops\n", len(vs), checked.Ops())
			os.Exit(1)
		}
		fmt.Printf("history check: %d ops verified, zero violations\n", checked.Ops())
	}
	if *traceOut != "" {
		traces = append(traces, t.PhaseTraces()...)
		if err := writeTraceFile(*traceOut, traces); err != nil {
			fmt.Printf("FAILED: write trace: %v\n", err)
			os.Exit(1)
		}
		log.Printf("wrote %d sampled op traces to %s (load in chrome://tracing or ui.perfetto.dev)", len(traces), *traceOut)
	}
	if t == nil {
		// Server mode: the authoritative counters live server-side.
		if blob, err := serverStats(*serverAddr); err == nil {
			fmt.Printf("PASS: %d ops over the wire against %s\n  server: %s\n", ops.Load(), *serverAddr, blob)
		} else {
			fmt.Printf("PASS: %d ops over the wire against %s (stats unavailable: %v)\n", ops.Load(), *serverAddr, err)
		}
		return
	}
	st := t.Stats()
	fmt.Printf("PASS: %d ops, %d aborts (%.2f%%), %d splits, %d merges, final count %d\n",
		ops.Load(), st.Aborts, st.AbortRate()*100, st.Splits, st.Merges, t.Count())
	if lat := t.Latencies(); lat != nil {
		for class, m := range lat.Summary() {
			fmt.Printf("  %-7s n=%-10.0f p50=%7.2fus p99=%7.2fus p99.9=%7.2fus\n",
				class, m["count"], m["p50_us"], m["p99_us"], m["p999_us"])
		}
	}
}

// writeTraceFile renders the sampled traces as Chrome trace-event JSON.
func writeTraceFile(path string, traces []bwtree.OpTrace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bwtree.WriteChromeTrace(f, traces); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// serverStats fetches a compact stats line from the server.
func serverStats(addr string) (string, error) {
	c, err := bwproto.Dial(addr)
	if err != nil {
		return "", err
	}
	defer c.Close()
	blob, err := c.Stats()
	if err != nil {
		return "", err
	}
	var parsed struct {
		Server struct {
			ConnsTotal uint64 `json:"conns_total"`
			Frames     uint64 `json:"frames"`
			Errors     uint64 `json:"proto_errors"`
		} `json:"server"`
		Shards int `json:"shards"`
	}
	if err := json.Unmarshal(blob, &parsed); err != nil {
		return "", err
	}
	return fmt.Sprintf("%d shards, %d frames over %d connections, %d protocol errors",
		parsed.Shards, parsed.Server.Frames, parsed.Server.ConnsTotal, parsed.Server.Errors), nil
}

// reportCrash distinguishes the expected simulated-crash error from a
// real failure.
func reportCrash(w int, err error, failed *atomic.Bool) {
	if errors.Is(err, wal.ErrCrashed) || errors.Is(err, wal.ErrClosed) {
		return // expected in wal mode: the in-flight op is now pending-unknown
	}
	log.Printf("worker %d: unexpected error: %v", w, err)
	failed.Store(true)
}
