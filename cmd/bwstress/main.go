// Command bwstress soaks the OpenBw-Tree under a concurrent mixed
// workload with periodic invariant validation — the long-running
// confidence test for the lock-free machinery:
//
//	bwstress -duration 60s -workers 8 -keyspace 100000
//
// Workers run a random insert/delete/update/lookup/scan mix over a shared
// key space while tracking, per worker, a disjoint slice of keys whose
// state they own exclusively and can therefore verify exactly. Between
// rounds the tree's structural invariants are checked. Any inconsistency
// aborts with a non-zero exit.
//
// With -batch N, inserts, deletes, and lookups are queued and flushed
// through the amortized-epoch batch API (InsertBatch/DeleteBatch/
// LookupBatch) in windows of N, with the same exact per-worker
// verification; updates and scans keep interleaving single-op.
//
// With -check, every operation is additionally recorded through the
// history checker (internal/histcheck) and the merged history is verified
// against sequential semantics at exit — catching cross-worker anomalies
// the per-worker mirrors cannot see. Recording is memory-bound, so -check
// caps the run at -check-ops total operations instead of running for the
// full -duration.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/bwtree"
	"repro/internal/histcheck"
	"repro/internal/index"
)

// session is the operation surface workers drive; both *bwtree.Session
// and the checker's recording session satisfy it, including the batch
// entry points (the recording session forwards them to the tree's native
// amortized-epoch batch path).
type session interface {
	Insert(key []byte, value uint64) bool
	Delete(key []byte, value uint64) bool
	Update(key []byte, value uint64) bool
	Lookup(key []byte, out []uint64) []uint64
	Scan(start []byte, n int, visit func(key []byte, value uint64) bool) int
	InsertBatch(keys [][]byte, vals []uint64, ok []bool) []bool
	DeleteBatch(keys [][]byte, vals []uint64, ok []bool) []bool
	LookupBatch(keys [][]byte, visit func(i int, vals []uint64))
	Release()
}

func key64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func main() {
	duration := flag.Duration("duration", 30*time.Second, "soak duration")
	workers := flag.Int("workers", 8, "worker goroutines")
	keyspace := flag.Uint64("keyspace", 100000, "shared keys per worker slice")
	leafSize := flag.Int("leaf", 32, "leaf node size (small sizes maximize SMO churn)")
	debugAddr := flag.String("debug-addr", "", "serve expvar/pprof/latency debug endpoints on this address (enables latency histograms and SMO tracing)")
	batch := flag.Int("batch", 0, "route inserts/deletes/lookups through the batch API in windows of this size (0 = single-op)")
	check := flag.Bool("check", false, "record every op and verify the merged history for linearizability at exit")
	checkOps := flag.Uint64("check-ops", 400_000, "total operation budget with -check (recorded histories must fit in memory)")
	flag.Parse()

	opts := bwtree.DefaultOptions()
	opts.LeafNodeSize = *leafSize
	opts.InnerNodeSize = *leafSize / 2
	opts.LeafChainLength = 8
	opts.InnerChainLength = 2
	opts.LeafMergeSize = *leafSize / 4
	opts.InnerMergeSize = *leafSize / 8
	if *debugAddr != "" {
		opts.LatencyHistograms = true
		opts.TraceRingSize = 1024
	}
	idx := index.NewBwTreeWith("OpenBwTree", opts)
	defer idx.Close()
	t := idx.(index.BwBacked).Tree()

	var checked *histcheck.Checked
	newSession := func() session { return t.NewSession() }
	if *check {
		checked = histcheck.Wrap(idx, false)
		// The recording session implements the batch surface natively; the
		// assertion converts past the narrower index.Session return type.
		newSession = func() session { return checked.NewSession().(session) }
		log.Printf("history checking on: capped at %d ops", *checkOps)
	}

	if *debugAddr != "" {
		srv, err := bwtree.ServeDebug(t, *debugAddr)
		if err != nil {
			log.Fatalf("debug server: %v", err)
		}
		defer srv.Close()
		log.Printf("debug endpoints at http://%s/debug/vars (stats, latency, trace, pprof)", srv.Addr())
	}

	var stop atomic.Bool
	var failed atomic.Bool
	var ops atomic.Uint64
	var wg sync.WaitGroup

	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := newSession()
			defer s.Release()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			// Each worker owns keys ≡ w (mod workers) and mirrors their
			// exact state; other keys are churned blindly.
			owned := map[uint64]uint64{}
			base := uint64(w)
			nw := uint64(*workers)
			var out []uint64
			// Batch mode (-batch > 1): inserts, deletes, and lookups are
			// queued per kind — at most one pending op per key, so the
			// mirror's expectation for each entry is exact — and flushed
			// through the batch API when the window fills.
			type pendingOp struct {
				k    uint64
				v    uint64
				kind byte // 'I', 'D', 'L'
			}
			var pend []pendingOp
			inPend := map[uint64]bool{}
			flushBatch := func() bool {
				if len(pend) == 0 {
					return true
				}
				var keys [][]byte
				var vals []uint64
				var sub []pendingOp
				run := func(kind byte) bool {
					keys, vals, sub = keys[:0], vals[:0], sub[:0]
					for _, p := range pend {
						if p.kind == kind {
							keys = append(keys, key64(p.k))
							vals = append(vals, p.v)
							sub = append(sub, p)
						}
					}
					if len(keys) == 0 {
						return true
					}
					switch kind {
					case 'I':
						for i, ok := range s.InsertBatch(keys, vals, nil) {
							_, had := owned[sub[i].k]
							if ok == had {
								log.Printf("worker %d: batch insert of key %d inconsistent (ok=%v had=%v)", w, sub[i].k, ok, had)
								return false
							}
							if ok {
								owned[sub[i].k] = sub[i].v
							}
						}
					case 'D':
						for i, ok := range s.DeleteBatch(keys, vals, nil) {
							if _, had := owned[sub[i].k]; ok != had {
								log.Printf("worker %d: batch delete of key %d inconsistent (ok=%v had=%v)", w, sub[i].k, ok, had)
								return false
							}
							delete(owned, sub[i].k)
						}
					case 'L':
						bad := false
						s.LookupBatch(keys, func(i int, vs []uint64) {
							want, had := owned[sub[i].k]
							if had != (len(vs) == 1) || had && vs[0] != want {
								log.Printf("worker %d: batch lookup %d got %v want %d,%v", w, sub[i].k, vs, want, had)
								bad = true
							}
						})
						if bad {
							return false
						}
					}
					return true
				}
				okAll := run('I') && run('D') && run('L')
				pend = pend[:0]
				clear(inPend)
				return okAll
			}
			enqueue := func(k, v uint64, kind byte) bool {
				if inPend[k] && !flushBatch() {
					return false
				}
				pend = append(pend, pendingOp{k: k, v: v, kind: kind})
				inPend[k] = true
				if len(pend) >= *batch {
					return flushBatch()
				}
				return true
			}
			for !stop.Load() {
				n := ops.Add(1)
				if *check && n > *checkOps {
					return
				}
				k := base + uint64(rng.Intn(int(*keyspace)))*nw
				switch rng.Intn(6) {
				case 0:
					v := rng.Uint64()
					if *batch > 1 {
						if !enqueue(k, v, 'I') {
							failed.Store(true)
							return
						}
						continue
					}
					if s.Insert(key64(k), v) {
						if _, had := owned[k]; had {
							log.Printf("worker %d: insert of present key %d succeeded", w, k)
							failed.Store(true)
							return
						}
						owned[k] = v
					} else if _, had := owned[k]; !had {
						log.Printf("worker %d: insert of absent key %d failed", w, k)
						failed.Store(true)
						return
					}
				case 1:
					if *batch > 1 {
						if !enqueue(k, owned[k], 'D') {
							failed.Store(true)
							return
						}
						continue
					}
					_, had := owned[k]
					if s.Delete(key64(k), 0) != had {
						log.Printf("worker %d: delete of key %d inconsistent (had=%v)", w, k, had)
						failed.Store(true)
						return
					}
					delete(owned, k)
				case 2:
					v := rng.Uint64()
					_, had := owned[k]
					if s.Update(key64(k), v) != had {
						log.Printf("worker %d: update of key %d inconsistent (had=%v)", w, k, had)
						failed.Store(true)
						return
					}
					if had {
						owned[k] = v
					}
				case 3, 4:
					if *batch > 1 {
						if !enqueue(k, 0, 'L') {
							failed.Store(true)
							return
						}
						continue
					}
					want, had := owned[k]
					out = s.Lookup(key64(k), out[:0])
					if had != (len(out) == 1) || had && out[0] != want {
						log.Printf("worker %d: lookup %d got %v want %d,%v", w, k, out, want, had)
						failed.Store(true)
						return
					}
				default:
					var prev uint64
					first := true
					s.Scan(key64(k), 32, func(kk []byte, v uint64) bool {
						cur := binary.BigEndian.Uint64(kk)
						if !first && cur <= prev {
							log.Printf("worker %d: scan order violation %d after %d", w, cur, prev)
							failed.Store(true)
							return false
						}
						prev, first = cur, false
						return true
					})
					if failed.Load() {
						return
					}
				}
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	start := time.Now()
	ticker := time.NewTicker(5 * time.Second)
	defer ticker.Stop()
loop:
	for time.Since(start) < *duration && !failed.Load() {
		select {
		case <-done:
			// Workers exhausted the -check op budget before the deadline.
			break loop
		case <-ticker.C:
			st := t.Stats()
			log.Printf("t=%v ops=%d (%.2f Mops/s) aborts=%d splits=%d merges=%d consolidations=%d",
				time.Since(start).Round(time.Second), ops.Load(),
				float64(ops.Load())/time.Since(start).Seconds()/1e6,
				st.Aborts, st.Splits, st.Merges, st.Consolidations)
		}
	}
	stop.Store(true)
	<-done

	if failed.Load() {
		fmt.Println("FAILED: inconsistency detected")
		os.Exit(1)
	}
	if err := t.Validate(); err != nil {
		fmt.Printf("FAILED: final validation: %v\n", err)
		os.Exit(1)
	}
	if checked != nil {
		vs := checked.Check()
		for i, v := range vs {
			if i == 20 {
				fmt.Printf("  ... %d more\n", len(vs)-20)
				break
			}
			fmt.Printf("  violation: %v\n", v)
		}
		if len(vs) > 0 {
			fmt.Printf("FAILED: history check found %d violations over %d recorded ops\n", len(vs), checked.Ops())
			os.Exit(1)
		}
		fmt.Printf("history check: %d ops verified, zero violations\n", checked.Ops())
	}
	st := t.Stats()
	fmt.Printf("PASS: %d ops, %d aborts (%.2f%%), %d splits, %d merges, final count %d\n",
		ops.Load(), st.Aborts, st.AbortRate()*100, st.Splits, st.Merges, t.Count())
	if lat := t.Latencies(); lat != nil {
		for class, m := range lat.Summary() {
			fmt.Printf("  %-7s n=%-10.0f p50=%7.2fus p99=%7.2fus p99.9=%7.2fus\n",
				class, m["count"], m["p50_us"], m["p99_us"], m["p999_us"])
		}
	}
}
