package main

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/bwtree"
)

// mirror is one worker's exact expectation for the keys it owns (its
// congruence class of the key space). Both the single-op and batch paths
// report outcomes through the same apply/check methods, and the final
// sweep compares the whole tree against the union of the mirrors.
type mirror struct {
	w     int
	owned map[uint64]uint64
	// pending is the single operation that was in flight when a simulated
	// crash hit (wal mode): its effect is legitimately unknown. owned still
	// holds the key's pre-state.
	pending *pendingUnknown
}

type pendingUnknown struct {
	op byte // 'I', 'U', 'D'
	k  uint64
	v  uint64 // post-value for I/U
}

func newMirror(w int) *mirror {
	return &mirror{w: w, owned: make(map[uint64]uint64)}
}

// valueOr returns the mirrored value for k, or def when absent.
func (m *mirror) valueOr(k, def uint64) uint64 {
	if v, ok := m.owned[k]; ok {
		return v
	}
	return def
}

// markPending records the one operation whose outcome a crash left
// unresolved.
func (m *mirror) markPending(op byte, k, v uint64) {
	m.pending = &pendingUnknown{op: op, k: k, v: v}
}

// applyInsert folds an acknowledged insert outcome into the mirror.
// Insert must succeed exactly when the key was absent.
func (m *mirror) applyInsert(k, v uint64, ok bool) error {
	_, had := m.owned[k]
	if ok == had {
		return fmt.Errorf("insert of key %d inconsistent (ok=%v had=%v)", k, ok, had)
	}
	if ok {
		m.owned[k] = v
	}
	return nil
}

// applyDelete folds an acknowledged delete outcome into the mirror.
func (m *mirror) applyDelete(k uint64, ok bool) error {
	_, had := m.owned[k]
	if ok != had {
		return fmt.Errorf("delete of key %d inconsistent (ok=%v had=%v)", k, ok, had)
	}
	delete(m.owned, k)
	return nil
}

// applyUpdate folds an acknowledged update outcome into the mirror.
func (m *mirror) applyUpdate(k, v uint64, ok bool) error {
	_, had := m.owned[k]
	if ok != had {
		return fmt.Errorf("update of key %d inconsistent (ok=%v had=%v)", k, ok, had)
	}
	if had {
		m.owned[k] = v
	}
	return nil
}

// checkLookup verifies a lookup result against the mirror.
func (m *mirror) checkLookup(k uint64, vals []uint64) error {
	want, had := m.owned[k]
	if had != (len(vals) == 1) || had && vals[0] != want {
		return fmt.Errorf("lookup of key %d got %v want %d,%v", k, vals, want, had)
	}
	return nil
}

// preloadMirrors seeds the mirrors from an already-populated tree (a
// recovered -wal directory), assigning each key to the worker owning its
// congruence class. Returns the number of keys loaded.
func preloadMirrors(pairs pairSource, mirrors []*mirror) (int, error) {
	nw := uint64(len(mirrors))
	n := 0
	var bad error
	pairs(func(key []byte, v uint64) {
		if bad != nil {
			return
		}
		if len(key) != 8 {
			bad = fmt.Errorf("tree holds non-workload key %x", key)
			return
		}
		k := binary.BigEndian.Uint64(key)
		mirrors[k%nw].owned[k] = v
		n++
	})
	return n, bad
}

// pairSource streams every (key, value) pair of the quiescent store in
// ascending order: a local tree walk, or a full SCAN over the wire in
// server mode. The two final sweeps share the exact same comparison.
type pairSource func(visit func(key []byte, value uint64))

// treePairs streams a local tree through its iterator.
func treePairs(t *bwtree.Tree) pairSource {
	return func(visit func(key []byte, value uint64)) {
		s := t.NewSession()
		defer s.Release()
		it := s.NewIterator()
		for it.SeekFirst(); it.Valid(); it.Next() {
			visit(it.Key(), it.Value())
		}
	}
}

// sweepVerify walks the whole store and compares it against the union of
// the worker mirrors: every mirrored key must hold its mirrored value,
// nothing else may exist, and a crash-pending key may be in its pre- or
// post-state but nothing else. Returns all mismatches.
func sweepVerify(pairs pairSource, mirrors []*mirror) []error {
	expect := make(map[uint64]uint64)
	pend := make(map[uint64]*pendingUnknown)
	preHad := make(map[uint64]bool)
	for _, m := range mirrors {
		for k, v := range m.owned {
			expect[k] = v
		}
		if p := m.pending; p != nil {
			pend[p.k] = p
			_, had := m.owned[p.k]
			preHad[p.k] = had
		}
	}

	var errs []error
	seen := make(map[uint64]bool)
	pairs(func(key []byte, v uint64) {
		if len(key) != 8 {
			errs = append(errs, fmt.Errorf("tree holds non-workload key %x", key))
			return
		}
		k := binary.BigEndian.Uint64(key)
		seen[k] = true
		if p, ok := pend[k]; ok {
			pre, had := expect[k], preHad[k]
			okPre := had && v == pre
			okPost := p.op != 'D' && v == p.v
			if !okPre && !okPost {
				errs = append(errs, fmt.Errorf("pending key %d = %d, want pre-state (%d,%v) or post-state (%c,%d)", k, v, pre, had, p.op, p.v))
			}
			return
		}
		want, ok := expect[k]
		if !ok {
			errs = append(errs, fmt.Errorf("tree holds unexpected key %d = %d", k, v))
			return
		}
		if v != want {
			errs = append(errs, fmt.Errorf("key %d = %d, want %d", k, v, want))
		}
	})
	for k, want := range expect {
		if seen[k] {
			continue
		}
		if p, ok := pend[k]; ok {
			// Absence is legal if the key was absent before the pending op
			// or the pending op was a delete.
			if !preHad[k] || p.op == 'D' {
				continue
			}
			_ = p
		}
		errs = append(errs, fmt.Errorf("key %d missing, want %d", k, want))
	}
	// Pending keys absent from both expect and the tree: legal only if the
	// pre-state was absent (pending insert that did not land).
	for k, p := range pend {
		if seen[k] {
			continue
		}
		if _, inExpect := expect[k]; inExpect {
			continue // handled above
		}
		if preHad[k] {
			errs = append(errs, fmt.Errorf("pending key %d vanished (pre-state present, op %c)", k, p.op))
		}
	}
	return errs
}

// batchQueue routes inserts, deletes, and lookups through the batch API
// in fixed windows, verifying every outcome against the worker's mirror —
// the same verifier the single-op path uses.
type batchQueue struct {
	s      session
	m      *mirror
	window int
	pend   []pendingBatchOp
	inPend map[uint64]bool
	keys   [][]byte
	vals   []uint64
	sub    []pendingBatchOp
}

type pendingBatchOp struct {
	k    uint64
	v    uint64
	kind byte // 'I', 'D', 'L'
}

func newBatchQueue(s session, m *mirror, window int) *batchQueue {
	return &batchQueue{s: s, m: m, window: window, inPend: make(map[uint64]bool)}
}

// enqueue adds one op, flushing first if the key already has a pending op
// (so the mirror's expectation per entry stays exact) and after if the
// window filled.
func (q *batchQueue) enqueue(k, v uint64, kind byte) error {
	if q.inPend[k] {
		if err := q.flush(); err != nil {
			return err
		}
	}
	q.pend = append(q.pend, pendingBatchOp{k: k, v: v, kind: kind})
	q.inPend[k] = true
	if len(q.pend) >= q.window {
		return q.flush()
	}
	return nil
}

// flush runs the queued window through the batch API, one kind at a time,
// and folds every outcome into the mirror.
func (q *batchQueue) flush() error {
	if len(q.pend) == 0 {
		return nil
	}
	defer func() {
		q.pend = q.pend[:0]
		clear(q.inPend)
	}()
	for _, kind := range [3]byte{'I', 'D', 'L'} {
		q.keys, q.vals, q.sub = q.keys[:0], q.vals[:0], q.sub[:0]
		for _, p := range q.pend {
			if p.kind == kind {
				q.keys = append(q.keys, key64(p.k))
				q.vals = append(q.vals, p.v)
				q.sub = append(q.sub, p)
			}
		}
		if len(q.keys) == 0 {
			continue
		}
		switch kind {
		case 'I':
			for i, ok := range q.s.InsertBatch(q.keys, q.vals, nil) {
				if err := q.m.applyInsert(q.sub[i].k, q.sub[i].v, ok); err != nil {
					return fmt.Errorf("batch %w", err)
				}
			}
		case 'D':
			for i, ok := range q.s.DeleteBatch(q.keys, q.vals, nil) {
				if err := q.m.applyDelete(q.sub[i].k, ok); err != nil {
					return fmt.Errorf("batch %w", err)
				}
			}
		case 'L':
			var lerr error
			q.s.LookupBatch(q.keys, func(i int, vs []uint64) {
				if err := q.m.checkLookup(q.sub[i].k, vs); err != nil && lerr == nil {
					lerr = fmt.Errorf("batch %w", err)
				}
			})
			if lerr != nil {
				return lerr
			}
		}
	}
	return nil
}

// appendGarbageToLastSegment simulates a torn sector by appending junk to
// the newest log segment.
func appendGarbageToLastSegment(dir string, junk []byte) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var segs []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) == 0 {
		return fmt.Errorf("no segments in %s", dir)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(filepath.Join(dir, segs[len(segs)-1]), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(junk)
	return err
}
