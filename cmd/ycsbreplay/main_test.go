package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestIndexByName(t *testing.T) {
	for _, name := range []string{"bw", "openbw", "skiplist", "masstree", "btree", "art", "OpenBW"} {
		idx, err := indexByName(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		idx.Close()
	}
	if _, err := indexByName("nope"); err == nil {
		t.Fatal("bogus index accepted")
	}
}

func writeTrace(t *testing.T, content string) *os.File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestParseTrace(t *testing.T) {
	f := writeTrace(t, `INSERT 00000000000000ff 7
READ 00000000000000ff
UPDATE 00000000000000ff 9
SCAN 0000000000000001 48
`)
	ops, err := parseTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 4 {
		t.Fatalf("%d ops", len(ops))
	}
	if ops[0].kind != 'I' || ops[0].value != 7 || len(ops[0].key) != 8 {
		t.Fatalf("insert op %+v", ops[0])
	}
	if ops[1].kind != 'R' {
		t.Fatalf("read op %+v", ops[1])
	}
	if ops[2].kind != 'U' || ops[2].value != 9 {
		t.Fatalf("update op %+v", ops[2])
	}
	if ops[3].kind != 'S' || ops[3].n != 48 {
		t.Fatalf("scan op %+v", ops[3])
	}
}

func TestParseTraceErrors(t *testing.T) {
	for _, bad := range []string{
		"INSERT zz 7\n",      // bad hex
		"INSERT 00\n",        // arity
		"SCAN 00 many\n",     // bad length
		"FROB 00 1\n",        // unknown op
		"UPDATE 00 notnum\n", // bad value
	} {
		f := writeTrace(t, bad)
		if _, err := parseTrace(f); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

// TestReplayEndToEnd parses a trace and drives it through an index the
// way main does.
func TestReplayEndToEnd(t *testing.T) {
	f := writeTrace(t, `INSERT 0000000000000001 10
INSERT 0000000000000002 20
READ 0000000000000001
UPDATE 0000000000000002 22
SCAN 0000000000000001 10
`)
	ops, err := parseTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := indexByName("btree")
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	s := idx.NewSession()
	defer s.Release()
	for _, o := range ops {
		switch o.kind {
		case 'I':
			if !s.Insert(o.key, o.value) {
				t.Fatalf("insert failed")
			}
		case 'R':
			if got := s.Lookup(o.key, nil); len(got) != 1 || got[0] != 10 {
				t.Fatalf("read got %v", got)
			}
		case 'U':
			if !s.Update(o.key, o.value) {
				t.Fatal("update failed")
			}
		case 'S':
			if n := s.Scan(o.key, o.n, func(k []byte, v uint64) bool { return true }); n != 2 {
				t.Fatalf("scan visited %d", n)
			}
		}
	}
}
