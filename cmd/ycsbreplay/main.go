// Command ycsbreplay replays a trace produced by ycsbgen against one of
// the six indexes and reports throughput:
//
//	ycsbgen -workload a -n 1000000 | ycsbreplay -index openbw -threads 4
//
// Lines are distributed round-robin across worker goroutines; see
// ycsbgen's documentation for the trace format.
//
// With -gen, the trace is synthesized in-process from the same
// internal/ycsb generators instead of read from stdin — no pipe, no hex
// encode/decode, and the population backing a mixed workload is loaded
// into the index untimed before the replay starts (a piped trace leaves
// loading to the operator, so its reads measure misses on a fresh index):
//
//	ycsbreplay -gen e -dist uniform -gen-n 1000000 -index openbw -threads 4
//
// With -batch N, INSERT and READ lines are accumulated per worker and
// flushed through the index's batch entry points in windows of N (the
// Bw-Tree runs its amortized-epoch batch path; other indexes fall back
// to a loop adapter). UPDATE and SCAN lines replay single-op.
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/bwtree"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/ycsb"
)

func indexByName(name string) (index.Index, error) {
	switch strings.ToLower(name) {
	case "bw", "bwtree":
		return index.NewBaselineBwTree(), nil
	case "openbw", "openbwtree":
		return index.NewOpenBwTree(), nil
	case "skiplist":
		return index.NewSkipList(), nil
	case "masstree":
		return index.NewMasstree(), nil
	case "btree", "b+tree":
		return index.NewBTree(), nil
	case "art":
		return index.NewART(), nil
	}
	return nil, fmt.Errorf("unknown index %q (bw, openbw, skiplist, masstree, btree, art)", name)
}

// indexByNameObs is indexByName with the Bw-Tree variants rebuilt with
// latency histograms, SMO tracing, phase sampling, and the flight
// recorder enabled, for -debug-addr and -trace-out runs.
func indexByNameObs(name string, phaseSample int) (index.Index, error) {
	var opts core.Options
	var report string
	switch strings.ToLower(name) {
	case "bw", "bwtree":
		opts, report = core.BaselineOptions(), "BwTree"
	case "openbw", "openbwtree":
		opts, report = core.DefaultOptions(), "OpenBwTree"
	default:
		return indexByName(name)
	}
	opts.LatencyHistograms = true
	opts.TraceRingSize = 1024
	opts.PhaseSampleEvery = phaseSample
	opts.PhaseTraceBuffer = 4096
	opts.FlightRecorderSize = 512
	opts.FlightLatencyThreshold = 250 * time.Millisecond
	return index.NewBwTreeWith(report, opts), nil
}

type op struct {
	kind  byte // 'I', 'R', 'U', 'S'
	key   []byte
	value uint64
	n     int
}

func main() {
	idxName := flag.String("index", "openbw", "index to replay against")
	threads := flag.Int("threads", 1, "worker goroutines")
	batch := flag.Int("batch", 0, "flush INSERT/READ lines through the batch API in windows of this size (0 = single-op)")
	debugAddr := flag.String("debug-addr", "", "serve expvar/pprof/latency debug endpoints on this address (Bw-Tree indexes only)")
	traceOut := flag.String("trace-out", "", "write sampled per-op phase traces as Chrome trace-event JSON to this file (Bw-Tree indexes only)")
	phaseSample := flag.Int("phase-sample", 64, "with -trace-out or -debug-addr: sample one op in N for phase tracing")
	gen := flag.String("gen", "", "synthesize the trace in-process instead of reading stdin: workload insert, a, b, c, or e")
	genKeys := flag.String("gen-keytype", "email", "key type for -gen: mono, rand, email, path")
	genN := flag.Int("gen-n", 1_000_000, "operations to synthesize with -gen")
	genPop := flag.Int("gen-population", 1_000_000, "loaded key population backing a -gen mixed workload")
	genSeed := flag.Uint64("gen-seed", 2018, "generator seed for -gen")
	distName := flag.String("dist", "zipfian", "request distribution for -gen: zipfian or uniform")
	flag.Parse()

	var idx index.Index
	var err error
	if *debugAddr != "" || *traceOut != "" {
		idx, err = indexByNameObs(*idxName, *phaseSample)
	} else {
		idx, err = indexByName(*idxName)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ycsbreplay:", err)
		os.Exit(2)
	}
	defer idx.Close()

	if *debugAddr != "" {
		bw, ok := idx.(index.BwBacked)
		if !ok {
			fmt.Fprintf(os.Stderr, "ycsbreplay: -debug-addr requires a Bw-Tree index, not %q\n", idx.Name())
			os.Exit(2)
		}
		srv, err := bwtree.ServeDebug(bw.Tree(), *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ycsbreplay: debug server:", err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug endpoints at http://%s/debug/vars\n", srv.Addr())
	}

	var ops []op
	if *gen != "" {
		ops, err = genTrace(idx, *gen, *genKeys, *distName, *genN, *genPop, *genSeed)
	} else {
		ops, err = parseTrace(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ycsbreplay:", err)
		os.Exit(1)
	}
	if len(ops) == 0 {
		fmt.Fprintln(os.Stderr, "ycsbreplay: empty trace")
		os.Exit(1)
	}

	nw := *threads
	if nw < 1 {
		nw = 1
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := idx.NewSession()
			defer s.Release()
			bs := index.AsBatch(s)
			var out []uint64
			var ikeys [][]byte
			var ivals []uint64
			var rkeys [][]byte
			var okBuf []bool
			flush := func() {
				if len(ikeys) > 0 {
					okBuf = bs.InsertBatch(ikeys, ivals, okBuf)
					ikeys, ivals = ikeys[:0], ivals[:0]
				}
				if len(rkeys) > 0 {
					bs.LookupBatch(rkeys, func(int, []uint64) {})
					rkeys = rkeys[:0]
				}
			}
			for i := w; i < len(ops); i += nw {
				o := ops[i]
				switch o.kind {
				case 'I':
					if *batch > 1 {
						ikeys = append(ikeys, o.key)
						ivals = append(ivals, o.value)
					} else {
						s.Insert(o.key, o.value)
					}
				case 'R':
					if *batch > 1 {
						rkeys = append(rkeys, o.key)
					} else {
						out = s.Lookup(o.key, out[:0])
					}
				case 'U':
					s.Update(o.key, o.value)
				case 'S':
					s.Scan(o.key, o.n, func(k []byte, v uint64) bool { return true })
				}
				if *batch > 1 && len(ikeys)+len(rkeys) >= *batch {
					flush()
				}
			}
			flush()
		}(w)
	}
	wg.Wait()
	dur := time.Since(start)
	fmt.Printf("%s: %d ops in %v (%.3f Mops/s, %d threads)\n",
		idx.Name(), len(ops), dur.Round(time.Millisecond),
		float64(len(ops))/dur.Seconds()/1e6, nw)
	if bw, ok := idx.(index.BwBacked); ok {
		if lat := bw.Tree().Latencies(); lat != nil {
			for class, m := range lat.Summary() {
				fmt.Printf("  %-7s n=%-10.0f p50=%7.2fus p90=%7.2fus p99=%7.2fus p99.9=%7.2fus\n",
					class, m["count"], m["p50_us"], m["p90_us"], m["p99_us"], m["p999_us"])
			}
		}
		if *traceOut != "" {
			traces := bw.Tree().PhaseTraces()
			f, err := os.Create(*traceOut)
			if err == nil {
				err = bwtree.WriteChromeTrace(f, traces)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "ycsbreplay: trace-out:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %d sampled op traces to %s (open in chrome://tracing or ui.perfetto.dev)\n",
				len(traces), *traceOut)
		}
	}
}

// genTrace synthesizes a trace in-process with the internal/ycsb
// generators (the exact ops ycsbgen would have piped, plus an explicit
// request distribution), preloading the population into idx untimed when
// the workload is a mixed one so the replay probes real data.
func genTrace(idx index.Index, workload, keyType, distName string, n, population int, seed uint64) ([]op, error) {
	wl, err := ycsb.ParseWorkload(workload)
	if err != nil {
		return nil, err
	}
	kt, err := ycsb.ParseKeyType(keyType)
	if err != nil {
		return nil, err
	}
	dist, err := ycsb.ParseDist(distName)
	if err != nil {
		return nil, err
	}
	pop := population
	if wl == ycsb.InsertOnly {
		pop = n
	}
	ks := ycsb.NewKeySet(kt, pop)
	if wl != ycsb.InsertOnly {
		s := idx.NewSession()
		for i, k := range ks.Keys {
			s.Insert(k, uint64(i))
		}
		s.Release()
		fmt.Fprintf(os.Stderr, "preloaded %d %s keys (untimed)\n", len(ks.Keys), kt)
	}
	stream := ycsb.NewStreamDist(wl, ks, 0, seed, dist)
	ops := make([]op, 0, n)
	for i := 0; i < n; i++ {
		o := stream.Next()
		switch o.Kind {
		case ycsb.OpInsert:
			ops = append(ops, op{kind: 'I', key: o.Key, value: o.Value})
		case ycsb.OpRead:
			ops = append(ops, op{kind: 'R', key: o.Key})
		case ycsb.OpUpdate:
			ops = append(ops, op{kind: 'U', key: o.Key, value: o.Value})
		case ycsb.OpScan:
			ops = append(ops, op{kind: 'S', key: o.Key, n: o.ScanLen})
		}
	}
	return ops, nil
}

func parseTrace(f *os.File) ([]op, error) {
	var ops []op
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 {
			continue
		}
		key, err := hex.DecodeString(fields[1])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad key: %v", line, err)
		}
		o := op{key: key}
		switch fields[0] {
		case "INSERT", "UPDATE":
			if len(fields) != 3 {
				return nil, fmt.Errorf("line %d: arity", line)
			}
			v, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad value: %v", line, err)
			}
			o.value = v
			o.kind = fields[0][0]
		case "READ":
			o.kind = 'R'
		case "SCAN":
			if len(fields) != 3 {
				return nil, fmt.Errorf("line %d: arity", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad scan length: %v", line, err)
			}
			o.n = n
			o.kind = 'S'
		default:
			return nil, fmt.Errorf("line %d: unknown op %q", line, fields[0])
		}
		ops = append(ops, o)
	}
	return ops, sc.Err()
}
