// Quickstart: the smallest complete OpenBw-Tree program — create a tree,
// open a per-goroutine session, and run the basic operations.
package main

import (
	"fmt"

	"repro/bwtree"
)

func main() {
	// DefaultOptions is the configuration from the paper's evaluation:
	// every optimization enabled, decentralized epoch GC.
	t := bwtree.New(bwtree.DefaultOptions())
	defer t.Close()

	// All operations go through a Session; each goroutine needs its own.
	s := t.NewSession()
	defer s.Release()

	// Insert some fruit prices. Keys are arbitrary non-empty byte
	// strings; values are 64-bit integers (e.g. tuple pointers).
	fruit := map[string]uint64{
		"apple": 120, "banana": 45, "cherry": 310, "durian": 900, "elderberry": 560,
	}
	for name, price := range fruit {
		if !s.Insert([]byte(name), price) {
			panic("duplicate key " + name)
		}
	}

	// Point lookup.
	if vals := s.Lookup([]byte("cherry"), nil); len(vals) == 1 {
		fmt.Println("cherry costs", vals[0])
	}

	// Update in place (logically — physically it appends a delta record).
	s.Update([]byte("banana"), 50)

	// Range scan in key order.
	fmt.Println("inventory from 'b':")
	s.Scan([]byte("b"), 10, func(key []byte, value uint64) bool {
		fmt.Printf("  %s = %d\n", key, value)
		return true
	})

	// Reverse iteration via the iterator API.
	fmt.Println("most expensive first key (reverse from 'z'):")
	it := s.NewIterator()
	for it.SeekToLast(); it.Valid(); it.Prev() {
		fmt.Printf("  %s = %d\n", it.Key(), it.Value())
		break // just the last one
	}

	// Delete and verify.
	s.Delete([]byte("durian"), 0)
	if vals := s.Lookup([]byte("durian"), nil); len(vals) == 0 {
		fmt.Println("durian removed")
	}

	// Internal statistics (Table 2 of the paper).
	st := t.Stats()
	fmt.Printf("ops=%d splits=%d consolidations=%d abort-rate=%.2f%%\n",
		st.Ops, st.Splits, st.Consolidations, st.AbortRate()*100)
}
