// orderbook: a price-ordered limit order book on the OpenBw-Tree,
// exercising the iterator machinery the paper adds in §3.2/Appendix C —
// forward iteration (best ask), backward iteration (best bid), and
// ordered scans under concurrent updates from matching goroutines.
package main

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/bwtree"
)

// priceKey encodes a price so byte order equals numeric order.
func priceKey(cents uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, cents)
	return b
}

func price(k []byte) uint64 { return binary.BigEndian.Uint64(k) }

func main() {
	t := bwtree.New(bwtree.DefaultOptions())
	defer t.Close()

	// Seed the book: asks above 10000 cents, bids below. The value is
	// the resting quantity at that price level.
	s := t.NewSession()
	for i := uint64(1); i <= 50; i++ {
		s.Insert(priceKey(10000+i*5), i*10) // asks
		s.Insert(priceKey(10000-i*5), i*10) // bids
	}

	mid := priceKey(10000)

	// Best ask: the first level at or above mid (forward iterator).
	it := s.NewIterator()
	it.Seek(mid)
	fmt.Printf("best ask: %d x %d\n", price(it.Key()), it.Value())

	// Best bid: the first level strictly below mid (backward iterator).
	it.Seek(mid)
	it.Prev()
	fmt.Printf("best bid: %d x %d\n", price(it.Key()), it.Value())

	// Top-of-book depth, five levels each way.
	fmt.Println("asks:")
	s.Scan(mid, 5, func(k []byte, v uint64) bool {
		fmt.Printf("  %d x %d\n", price(k), v)
		return true
	})
	fmt.Println("bids:")
	s.ScanReverse(priceKey(9999), 5, func(k []byte, v uint64) bool {
		fmt.Printf("  %d x %d\n", price(k), v)
		return true
	})
	s.Release()

	// Concurrent matching: one goroutine lifts asks (deletes levels from
	// the bottom of the ask stack), one adds bids, while a reader keeps
	// computing the spread from consistent private iterator copies.
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // taker: consume the 20 cheapest asks
		defer wg.Done()
		s := t.NewSession()
		defer s.Release()
		for i := uint64(1); i <= 20; i++ {
			s.Delete(priceKey(10000+i*5), 0)
		}
	}()
	go func() { // maker: raise bids toward mid
		defer wg.Done()
		s := t.NewSession()
		defer s.Release()
		for i := uint64(0); i < 20; i++ {
			s.Insert(priceKey(9980+i), 7)
		}
	}()
	go func() { // reader: spread snapshots under concurrency
		defer wg.Done()
		s := t.NewSession()
		defer s.Release()
		for r := 0; r < 5; r++ {
			it := s.NewIterator()
			it.Seek(mid)
			if !it.Valid() {
				continue
			}
			ask := price(it.Key())
			it.Prev()
			if !it.Valid() {
				continue
			}
			bid := price(it.Key())
			fmt.Printf("spread snapshot: bid %d / ask %d (%d)\n", bid, ask, ask-bid)
		}
	}()
	wg.Wait()

	s = t.NewSession()
	defer s.Release()
	it = s.NewIterator()
	it.Seek(mid)
	fmt.Printf("final best ask: %d x %d\n", price(it.Key()), it.Value())
	it.Prev()
	fmt.Printf("final best bid: %d x %d\n", price(it.Key()), it.Value())
}
