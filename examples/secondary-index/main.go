// secondary-index: non-unique key support (§3.1 of the paper) in its
// natural habitat — a DBMS secondary index where one indexed attribute
// value maps to many row IDs.
//
// An "orders" table is indexed by customer name; the index stores
// (customer -> orderID) pairs with duplicates allowed, and the program
// demonstrates visibility of inserts and pair-precise deletes, which is
// exactly what the paper's S_present/S_deleted replay implements.
package main

import (
	"fmt"

	"repro/bwtree"
)

type order struct {
	id       uint64
	customer string
	amount   int
}

func main() {
	// NonUnique enables duplicate keys: lookups return every visible
	// value, deletes remove a specific (key, value) pair.
	opts := bwtree.DefaultOptions()
	opts.NonUnique = true
	idx := bwtree.New(opts) // customer -> orderID
	defer idx.Close()

	s := idx.NewSession()
	defer s.Release()

	orders := []order{
		{101, "alice", 30}, {102, "bob", 12}, {103, "alice", 7},
		{104, "carol", 99}, {105, "alice", 41}, {106, "bob", 5},
	}
	table := map[uint64]order{} // the "heap file"
	for _, o := range orders {
		table[o.id] = o
		if !s.Insert([]byte(o.customer), o.id) {
			panic("duplicate (customer, orderID) pair")
		}
	}

	// Query: all of alice's orders via the secondary index.
	fmt.Println("alice's orders:")
	for _, id := range s.Lookup([]byte("alice"), nil) {
		o := table[id]
		fmt.Printf("  order %d, amount %d\n", o.id, o.amount)
	}

	// Inserting the same pair twice is refused ...
	if s.Insert([]byte("alice"), 101) {
		panic("pair duplicate accepted")
	}
	// ... but the same customer with a new order ID is fine.
	table[107] = order{107, "alice", 3}
	s.Insert([]byte("alice"), 107)

	// Delete order 103: remove exactly the (alice, 103) pair.
	delete(table, 103)
	if !s.Delete([]byte("alice"), 103) {
		panic("pair delete failed")
	}

	fmt.Println("alice's orders after returning #103 and placing #107:")
	for _, id := range s.Lookup([]byte("alice"), nil) {
		o := table[id]
		fmt.Printf("  order %d, amount %d\n", o.id, o.amount)
	}

	// Range scan across customers: the index is still ordered, so a scan
	// groups duplicates together.
	fmt.Println("full index scan:")
	s.Scan([]byte("a"), 100, func(k []byte, v uint64) bool {
		fmt.Printf("  %s -> order %d\n", k, v)
		return true
	})
}
