// kvserver: a concurrent TCP key-value store backed by the OpenBw-Tree —
// the "index inside a DBMS with a worker pool" deployment the paper
// assumes (§2). Every connection gets its own tree Session, mirroring a
// DBMS worker thread.
//
// Run the server (it serves one demo round against itself with -demo):
//
//	go run ./examples/kvserver -addr :7070 &
//	printf 'SET k 42\r\nGET k\r\nSCAN a 10\r\n' | nc localhost 7070
//
// With -wal DIR the store is durable: every mutation is write-ahead
// logged (group commit, synchronous acknowledgement) and the directory is
// recovered on startup, so a restart — or SIGINT, which shuts down
// gracefully with a final checkpoint — loses nothing.
//
// Protocol (line-oriented):
//
//	SET <key> <uint64>     -> OK | ERR duplicate
//	GET <key>              -> VAL <v> | NIL
//	UPD <key> <uint64>     -> OK | NIL
//	DEL <key>              -> OK | NIL
//	SCAN <start> <n>       -> ITEM <key> <v> ... END
//	STATS                  -> STATS ops=<n> aborts=<n> splits=<n>
//	QUIT
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/bwtree"
)

// kvSession is the per-connection operation surface. Mutations return an
// error only when the store is going away (durable writer closed); the
// bool carries the tree-operation outcome. Both the plain adapter and
// *bwtree.DurableSession satisfy it.
type kvSession interface {
	Insert(key []byte, value uint64) (bool, error)
	Update(key []byte, value uint64) (bool, error)
	Delete(key []byte, value uint64) (bool, error)
	Lookup(key []byte, out []uint64) []uint64
	Scan(start []byte, n int, visit func(key []byte, value uint64) bool) int
	Release()
}

// plainSession adapts an in-memory tree session to kvSession.
type plainSession struct{ s *bwtree.Session }

func (p plainSession) Insert(k []byte, v uint64) (bool, error) { return p.s.Insert(k, v), nil }
func (p plainSession) Update(k []byte, v uint64) (bool, error) { return p.s.Update(k, v), nil }
func (p plainSession) Delete(k []byte, v uint64) (bool, error) { return p.s.Delete(k, v), nil }
func (p plainSession) Lookup(k []byte, out []uint64) []uint64  { return p.s.Lookup(k, out) }
func (p plainSession) Scan(start []byte, n int, visit func([]byte, uint64) bool) int {
	return p.s.Scan(start, n, visit)
}
func (p plainSession) Release() { p.s.Release() }

// server owns the listener, the tree (durable or plain), and the set of
// live connections, so Shutdown can stop accepting, drain, and persist.
type server struct {
	t  *bwtree.Tree
	d  *bwtree.Durable // nil without -wal
	ln net.Listener

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	draining atomic.Bool
	wg       sync.WaitGroup // one per live connection
	accept   sync.WaitGroup // the accept loop
}

// newServer opens the store (recovering dir when walDir is set) and
// starts listening; call serveLoop to begin accepting.
func newServer(addr, walDir string, opts bwtree.Options) (*server, error) {
	sv := &server{conns: make(map[net.Conn]struct{})}
	if walDir != "" {
		d, err := bwtree.OpenDurable(walDir, bwtree.DurableOptions{Tree: opts, SyncOnCommit: true})
		if err != nil {
			return nil, err
		}
		sv.d = d
		sv.t = d.Tree()
		rec := d.RecoveryStats()
		if rec.SnapshotKeys > 0 || rec.Replayed > 0 {
			log.Printf("recovered %d snapshot keys + %d log records (torn=%v)", rec.SnapshotKeys, rec.Replayed, rec.TornTail)
		}
	} else {
		sv.t = bwtree.New(opts)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		sv.closeStore(false)
		return nil, err
	}
	sv.ln = ln
	return sv, nil
}

// newSession hands out the per-connection operation surface.
func (sv *server) newSession() kvSession {
	if sv.d != nil {
		return sv.d.NewSession()
	}
	return plainSession{sv.t.NewSession()}
}

// serveLoop accepts connections until the listener closes.
func (sv *server) serveLoop() {
	sv.accept.Add(1)
	defer sv.accept.Done()
	for {
		conn, err := sv.ln.Accept()
		if err != nil {
			return
		}
		sv.mu.Lock()
		if sv.draining.Load() {
			sv.mu.Unlock()
			conn.Close()
			continue
		}
		sv.conns[conn] = struct{}{}
		sv.mu.Unlock()
		sv.wg.Add(1)
		go func() {
			defer sv.wg.Done()
			sv.serve(conn)
			sv.mu.Lock()
			delete(sv.conns, conn)
			sv.mu.Unlock()
		}()
	}
}

// Shutdown stops accepting, waits up to timeout for live connections to
// finish (then force-closes the stragglers), takes a final checkpoint
// when the store is durable, and closes the store.
func (sv *server) Shutdown(timeout time.Duration) error {
	sv.draining.Store(true)
	sv.ln.Close()
	sv.accept.Wait()

	drained := make(chan struct{})
	go func() { sv.wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(timeout):
		sv.mu.Lock()
		n := len(sv.conns)
		for conn := range sv.conns {
			conn.Close()
		}
		sv.mu.Unlock()
		if n > 0 {
			log.Printf("shutdown: force-closed %d idle connections", n)
		}
		<-drained
	}
	return sv.closeStore(true)
}

// closeStore persists (checkpoint when durable and asked to) and closes
// the tree.
func (sv *server) closeStore(checkpoint bool) error {
	if sv.d == nil {
		sv.t.Close()
		return nil
	}
	var err error
	if checkpoint {
		if _, cerr := sv.d.Checkpoint(); cerr != nil {
			err = fmt.Errorf("final checkpoint: %w", cerr)
		} else {
			log.Printf("final checkpoint written")
		}
	}
	if cerr := sv.d.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	demo := flag.Bool("demo", false, "run a self-contained demo round and exit")
	debugAddr := flag.String("debug-addr", "", "serve expvar/pprof/latency debug endpoints on this address")
	walDir := flag.String("wal", "", "write-ahead log directory (enables durability and recovery)")
	flag.Parse()

	opts := bwtree.DefaultOptions()
	if *debugAddr != "" {
		opts.LatencyHistograms = true
		opts.TraceRingSize = 512
	}
	sv, err := newServer(*addr, *walDir, opts)
	if err != nil {
		log.Fatal(err)
	}

	if *debugAddr != "" {
		srv, err := bwtree.ServeDebug(sv.t, *debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("debug endpoints at http://%s/debug/vars", srv.Addr())
	}

	log.Printf("kvserver listening on %s", sv.ln.Addr())

	// SIGINT/SIGTERM: graceful shutdown — stop accepting, drain, final
	// checkpoint when durable.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-sigc
		log.Printf("shutting down")
		if err := sv.Shutdown(5 * time.Second); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	if *demo {
		go func() {
			runDemo(sv.ln.Addr().String())
			sigc <- os.Interrupt // demo mode: one round, then shut down
		}()
	}

	sv.serveLoop()
	<-done
}

// serve handles one connection with its own session.
func (sv *server) serve(conn net.Conn) {
	defer conn.Close()
	s := sv.newSession()
	defer s.Release()

	r := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	for r.Scan() {
		fields := strings.Fields(r.Text())
		if len(fields) == 0 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "SET":
			if bad(w, len(fields) != 3) {
				break
			}
			v, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				fmt.Fprintf(w, "ERR %v\r\n", err)
				break
			}
			ok, err := s.Insert([]byte(fields[1]), v)
			if storeGone(w, err) {
				return
			}
			if ok {
				fmt.Fprint(w, "OK\r\n")
			} else {
				fmt.Fprint(w, "ERR duplicate\r\n")
			}
		case "GET":
			if bad(w, len(fields) != 2) {
				break
			}
			if vals := s.Lookup([]byte(fields[1]), nil); len(vals) > 0 {
				fmt.Fprintf(w, "VAL %d\r\n", vals[0])
			} else {
				fmt.Fprint(w, "NIL\r\n")
			}
		case "UPD":
			if bad(w, len(fields) != 3) {
				break
			}
			v, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				fmt.Fprintf(w, "ERR %v\r\n", err)
				break
			}
			ok, err := s.Update([]byte(fields[1]), v)
			if storeGone(w, err) {
				return
			}
			if ok {
				fmt.Fprint(w, "OK\r\n")
			} else {
				fmt.Fprint(w, "NIL\r\n")
			}
		case "DEL":
			if bad(w, len(fields) != 2) {
				break
			}
			ok, err := s.Delete([]byte(fields[1]), 0)
			if storeGone(w, err) {
				return
			}
			if ok {
				fmt.Fprint(w, "OK\r\n")
			} else {
				fmt.Fprint(w, "NIL\r\n")
			}
		case "SCAN":
			if bad(w, len(fields) != 3) {
				break
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				fmt.Fprintf(w, "ERR %v\r\n", err)
				break
			}
			s.Scan([]byte(fields[1]), n, func(k []byte, v uint64) bool {
				fmt.Fprintf(w, "ITEM %s %d\r\n", k, v)
				return true
			})
			fmt.Fprint(w, "END\r\n")
		case "STATS":
			st := sv.t.Stats()
			fmt.Fprintf(w, "STATS ops=%d aborts=%d splits=%d\r\n", st.Ops, st.Aborts, st.Splits)
		case "QUIT":
			fmt.Fprint(w, "BYE\r\n")
			return
		default:
			fmt.Fprintf(w, "ERR unknown command %q\r\n", fields[0])
		}
		w.Flush()
	}
}

func bad(w *bufio.Writer, cond bool) bool {
	if cond {
		fmt.Fprint(w, "ERR arity\r\n")
	}
	return cond
}

// storeGone reports a durability-layer error to the client and signals
// the connection to hang up (the store is shutting down).
func storeGone(w *bufio.Writer, err error) bool {
	if err == nil {
		return false
	}
	if !errors.Is(err, net.ErrClosed) {
		fmt.Fprint(w, "ERR store shutting down\r\n")
		w.Flush()
	}
	return true
}

// runDemo exercises the server once over a real socket.
func runDemo(addr string) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	send := bufio.NewWriter(conn)
	recv := bufio.NewScanner(conn)
	for _, cmd := range []string{
		"SET apple 1", "SET banana 2", "SET cherry 3",
		"GET banana", "UPD banana 20", "GET banana",
		"SCAN a 10", "DEL apple", "GET apple", "STATS", "QUIT",
	} {
		fmt.Fprintf(send, "%s\r\n", cmd)
		send.Flush()
		for recv.Scan() {
			line := recv.Text()
			fmt.Printf("%-16s -> %s\n", cmd, line)
			if !strings.HasPrefix(line, "ITEM") {
				break
			}
			cmd = ""
		}
	}
}
