// kvserver: a concurrent TCP key-value store backed by the OpenBw-Tree —
// the "index inside a DBMS with a worker pool" deployment the paper
// assumes (§2). Every connection gets its own tree Session, mirroring a
// DBMS worker thread.
//
// Run the server (it serves one demo round against itself with -demo):
//
//	go run ./examples/kvserver -addr :7070 &
//	printf 'SET k 42\r\nGET k\r\nSCAN a 10\r\n' | nc localhost 7070
//
// Protocol (line-oriented):
//
//	SET <key> <uint64>     -> OK | ERR duplicate
//	GET <key>              -> VAL <v> | NIL
//	UPD <key> <uint64>     -> OK | NIL
//	DEL <key>              -> OK | NIL
//	SCAN <start> <n>       -> ITEM <key> <v> ... END
//	STATS                  -> STATS ops=<n> aborts=<n> splits=<n>
//	QUIT
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"

	"repro/bwtree"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	demo := flag.Bool("demo", false, "run a self-contained demo round and exit")
	debugAddr := flag.String("debug-addr", "", "serve expvar/pprof/latency debug endpoints on this address")
	flag.Parse()

	opts := bwtree.DefaultOptions()
	if *debugAddr != "" {
		opts.LatencyHistograms = true
		opts.TraceRingSize = 512
	}
	t := bwtree.New(opts)
	defer t.Close()

	if *debugAddr != "" {
		srv, err := bwtree.ServeDebug(t, *debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("debug endpoints at http://%s/debug/vars", srv.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	log.Printf("kvserver listening on %s", ln.Addr())

	if *demo {
		go runDemo(ln.Addr().String())
	}

	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go serve(t, conn, *demo, ln)
	}
}

// serve handles one connection with its own tree session.
func serve(t *bwtree.Tree, conn net.Conn, demo bool, ln net.Listener) {
	defer conn.Close()
	s := t.NewSession()
	defer s.Release()

	r := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	for r.Scan() {
		fields := strings.Fields(r.Text())
		if len(fields) == 0 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "SET":
			if bad(w, len(fields) != 3) {
				break
			}
			v, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				fmt.Fprintf(w, "ERR %v\r\n", err)
				break
			}
			if s.Insert([]byte(fields[1]), v) {
				fmt.Fprint(w, "OK\r\n")
			} else {
				fmt.Fprint(w, "ERR duplicate\r\n")
			}
		case "GET":
			if bad(w, len(fields) != 2) {
				break
			}
			if vals := s.Lookup([]byte(fields[1]), nil); len(vals) > 0 {
				fmt.Fprintf(w, "VAL %d\r\n", vals[0])
			} else {
				fmt.Fprint(w, "NIL\r\n")
			}
		case "UPD":
			if bad(w, len(fields) != 3) {
				break
			}
			v, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				fmt.Fprintf(w, "ERR %v\r\n", err)
				break
			}
			if s.Update([]byte(fields[1]), v) {
				fmt.Fprint(w, "OK\r\n")
			} else {
				fmt.Fprint(w, "NIL\r\n")
			}
		case "DEL":
			if bad(w, len(fields) != 2) {
				break
			}
			if s.Delete([]byte(fields[1]), 0) {
				fmt.Fprint(w, "OK\r\n")
			} else {
				fmt.Fprint(w, "NIL\r\n")
			}
		case "SCAN":
			if bad(w, len(fields) != 3) {
				break
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				fmt.Fprintf(w, "ERR %v\r\n", err)
				break
			}
			s.Scan([]byte(fields[1]), n, func(k []byte, v uint64) bool {
				fmt.Fprintf(w, "ITEM %s %d\r\n", k, v)
				return true
			})
			fmt.Fprint(w, "END\r\n")
		case "STATS":
			st := t.Stats()
			fmt.Fprintf(w, "STATS ops=%d aborts=%d splits=%d\r\n", st.Ops, st.Aborts, st.Splits)
		case "QUIT":
			fmt.Fprint(w, "BYE\r\n")
			w.Flush()
			if demo {
				ln.Close() // demo mode: one round, then shut down
			}
			return
		default:
			fmt.Fprintf(w, "ERR unknown command %q\r\n", fields[0])
		}
		w.Flush()
	}
}

func bad(w *bufio.Writer, cond bool) bool {
	if cond {
		fmt.Fprint(w, "ERR arity\r\n")
	}
	return cond
}

// runDemo exercises the server once over a real socket.
func runDemo(addr string) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	send := bufio.NewWriter(conn)
	recv := bufio.NewScanner(conn)
	for _, cmd := range []string{
		"SET apple 1", "SET banana 2", "SET cherry 3",
		"GET banana", "UPD banana 20", "GET banana",
		"SCAN a 10", "DEL apple", "GET apple", "STATS", "QUIT",
	} {
		fmt.Fprintf(send, "%s\r\n", cmd)
		send.Flush()
		for recv.Scan() {
			line := recv.Text()
			fmt.Printf("%-16s -> %s\n", cmd, line)
			if !strings.HasPrefix(line, "ITEM") {
				break
			}
			cmd = ""
		}
	}
}
