package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/bwtree"
)

// client is a tiny line-protocol driver over a real TCP connection.
type client struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Scanner
	w    *bufio.Writer
}

func dialClient(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{t: t, conn: conn, r: bufio.NewScanner(conn), w: bufio.NewWriter(conn)}
}

// cmd sends one command and returns the single-line reply.
func (c *client) cmd(line string) string {
	c.t.Helper()
	fmt.Fprintf(c.w, "%s\r\n", line)
	c.w.Flush()
	if !c.r.Scan() {
		c.t.Fatalf("connection closed waiting for reply to %q", line)
	}
	return c.r.Text()
}

// scan sends SCAN and collects ITEM lines until END.
func (c *client) scan(start string, n int) []string {
	c.t.Helper()
	fmt.Fprintf(c.w, "SCAN %s %d\r\n", start, n)
	c.w.Flush()
	var items []string
	for c.r.Scan() {
		line := c.r.Text()
		if line == "END" {
			return items
		}
		if !strings.HasPrefix(line, "ITEM ") {
			c.t.Fatalf("unexpected scan reply %q", line)
		}
		items = append(items, strings.TrimPrefix(line, "ITEM "))
	}
	c.t.Fatal("connection closed mid-scan")
	return nil
}

func (c *client) expect(line, want string) {
	c.t.Helper()
	if got := c.cmd(line); got != want {
		c.t.Fatalf("%q -> %q, want %q", line, got, want)
	}
}

// TestServerRoundTripAndShutdown drives the full protocol through a real
// TCP socket against a durable store, shuts the server down gracefully,
// and verifies the data survives into a fresh recovery.
func TestServerRoundTripAndShutdown(t *testing.T) {
	dir := t.TempDir()
	sv, err := newServer("127.0.0.1:0", dir, bwtree.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	go sv.serveLoop()
	addr := sv.ln.Addr().String()

	c := dialClient(t, addr)
	c.expect("SET apple 1", "OK")
	c.expect("SET banana 2", "OK")
	c.expect("SET cherry 3", "OK")
	c.expect("SET apple 9", "ERR duplicate")
	c.expect("GET apple", "VAL 1")
	c.expect("UPD apple 10", "OK")
	c.expect("GET apple", "VAL 10")
	c.expect("DEL banana", "OK")
	c.expect("GET banana", "NIL")
	c.expect("DEL banana", "NIL")
	items := c.scan("a", 10)
	want := []string{"apple 10", "cherry 3"}
	if len(items) != len(want) {
		t.Fatalf("scan = %v, want %v", items, want)
	}
	for i := range want {
		if items[i] != want[i] {
			t.Fatalf("scan[%d] = %q, want %q", i, items[i], want[i])
		}
	}
	if got := c.cmd("STATS"); !strings.HasPrefix(got, "STATS ops=") {
		t.Fatalf("STATS -> %q", got)
	}
	c.expect("QUIT", "BYE")

	// A second connection left idle must not block shutdown forever: the
	// drain timeout force-closes it.
	idle := dialClient(t, addr)
	_ = idle

	donec := make(chan error, 1)
	go func() { donec <- sv.Shutdown(200 * time.Millisecond) }()
	select {
	case err := <-donec:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung")
	}

	// The listener is really closed.
	if conn, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		conn.Close()
		t.Fatal("dial succeeded after shutdown")
	}

	// Durability: reopen the directory and find the exact final state,
	// loaded from the shutdown checkpoint (no log tail to replay).
	d, err := bwtree.OpenDurable(dir, bwtree.DurableOptions{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer d.Close()
	rec := d.RecoveryStats()
	if rec.SnapshotKeys != 2 || rec.Replayed != 0 {
		t.Errorf("recovery stats = %+v, want 2 snapshot keys and 0 replayed", rec)
	}
	for key, want := range map[string]uint64{"apple": 10, "cherry": 3} {
		out, err := d.Lookup([]byte(key), nil)
		if err != nil || len(out) != 1 || out[0] != want {
			t.Errorf("%s = %v (%v), want [%d]", key, out, err, want)
		}
	}
	if out, err := d.Lookup([]byte("banana"), nil); err != nil || len(out) != 0 {
		t.Errorf("banana = %v (%v), want absent", out, err)
	}
	if err := d.Tree().Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

// TestServerPlainMode covers the non-durable path through the same
// socket protocol.
func TestServerPlainMode(t *testing.T) {
	sv, err := newServer("127.0.0.1:0", "", bwtree.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	go sv.serveLoop()
	c := dialClient(t, sv.ln.Addr().String())
	c.expect("SET k 7", "OK")
	c.expect("GET k", "VAL 7")
	c.expect("QUIT", "BYE")
	if err := sv.Shutdown(time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}
