// Benchmarks mirroring every table and figure of the paper's evaluation.
// Each BenchmarkFigN / BenchmarkTableN exercises the same code paths as
// the corresponding bwbench experiment, sized for `go test -bench`.
// The full parameter sweeps live in cmd/bwbench.
package repro

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/ycsb"
)

const benchKeys = 200_000

// loadedTree builds a Bw-Tree preloaded with Rand-Int keys.
func loadedTree(opts core.Options, kt ycsb.KeyType, n int) (*core.Tree, *ycsb.KeySet) {
	t := core.New(opts)
	ks := ycsb.NewKeySet(kt, n)
	s := t.NewSession()
	for _, k := range ks.Keys {
		s.Insert(k, 1)
	}
	s.Release()
	return t, ks
}

// loadedIndex preloads any index.Index.
func loadedIndex(mk func() index.Index, kt ycsb.KeyType, n int) (index.Index, *ycsb.KeySet) {
	idx := mk()
	ks := ycsb.NewKeySet(kt, n)
	s := idx.NewSession()
	for _, k := range ks.Keys {
		s.Insert(k, 1)
	}
	s.Release()
	return idx, ks
}

func benchInsertOnly(b *testing.B, opts core.Options, kt ycsb.KeyType) {
	b.ReportAllocs()
	t := core.New(opts)
	defer t.Close()
	ks := ycsb.NewKeySet(kt, 0)
	s := t.NewSession()
	defer s.Release()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(ks.ExtraKey(), uint64(i))
	}
}

func benchReadUpdate(b *testing.B, opts core.Options, kt ycsb.KeyType) {
	b.ReportAllocs()
	t, ks := loadedTree(opts, kt, benchKeys)
	defer t.Close()
	s := t.NewSession()
	defer s.Release()
	stream := ycsb.NewStream(ycsb.ReadUpdate, ks, 0, 42)
	var out []uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := stream.Next()
		if op.Kind == ycsb.OpRead {
			out = s.Lookup(op.Key, out[:0])
		} else {
			s.Update(op.Key, op.Value)
		}
	}
}

// BenchmarkFig8 measures delta-record pre-allocation on/off (§5.2).
func BenchmarkFig8(b *testing.B) {
	off := core.DefaultOptions()
	off.Preallocate = false
	on := core.DefaultOptions()
	for _, kt := range []ycsb.KeyType{ycsb.MonoInt, ycsb.RandInt} {
		b.Run(fmt.Sprintf("InsertOnly/%v/IndependentAlloc", kt), func(b *testing.B) { benchInsertOnly(b, off, kt) })
		b.Run(fmt.Sprintf("InsertOnly/%v/PreAlloc", kt), func(b *testing.B) { benchInsertOnly(b, on, kt) })
	}
}

// BenchmarkFig9 measures fast consolidation + search shortcuts (§5.3).
func BenchmarkFig9(b *testing.B) {
	off := core.DefaultOptions()
	off.FastConsolidate = false
	off.SearchShortcuts = false
	on := core.DefaultOptions()
	b.Run("ReadUpdate/RandInt/NoFCSS", func(b *testing.B) { benchReadUpdate(b, off, ycsb.RandInt) })
	b.Run("ReadUpdate/RandInt/FCSS", func(b *testing.B) { benchReadUpdate(b, on, ycsb.RandInt) })
}

// BenchmarkFig10 measures the GC schemes under parallel Read/Update
// (§5.4).
func BenchmarkFig10(b *testing.B) {
	for name, scheme := range map[string]core.GCScheme{
		"CentralizedGC": core.GCCentralized,
		"DistributedGC": core.GCDecentralized,
	} {
		b.Run(name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.GC = scheme
			t, ks := loadedTree(opts, ycsb.MonoInt, benchKeys)
			defer t.Close()
			var worker atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := int(worker.Add(1))
				s := t.NewSession()
				defer s.Release()
				stream := ycsb.NewStream(ycsb.ReadUpdate, ks, w, uint64(w)*13)
				var out []uint64
				for pb.Next() {
					op := stream.Next()
					if op.Kind == ycsb.OpRead {
						out = s.Lookup(op.Key, out[:0])
					} else {
						s.Update(op.Key, op.Value)
					}
				}
			})
		})
	}
}

// BenchmarkFig11 sweeps delta-chain length x node size (§5.5).
func BenchmarkFig11(b *testing.B) {
	for _, ns := range []int{32, 128} {
		for _, cl := range []int{8, 24, 40} {
			opts := core.DefaultOptions()
			opts.LeafNodeSize = ns
			opts.LeafChainLength = cl
			opts.LeafMergeSize = ns / 4
			b.Run(fmt.Sprintf("node=%d/chain=%d", ns, cl), func(b *testing.B) {
				benchInsertOnly(b, opts, ycsb.MonoInt)
			})
		}
	}
}

// BenchmarkFig12a applies the optimizations one at a time (§5.6).
func BenchmarkFig12a(b *testing.B) {
	bw := core.BaselineOptions()
	gc := bw
	gc.GC = core.GCDecentralized
	pa := gc
	pa.Preallocate = true
	pa.LeafChainLength = core.DefaultOptions().LeafChainLength
	fc := pa
	fc.FastConsolidate = true
	fc.SearchShortcuts = true
	nk := fc
	nk.NonUnique = true
	for _, v := range []struct {
		name string
		opts core.Options
	}{{"BwTree", bw}, {"+GC", gc}, {"+PA", pa}, {"+FCSS", fc}, {"+NK", nk}} {
		b.Run(v.name, func(b *testing.B) { benchReadUpdate(b, v.opts, ycsb.RandInt) })
	}
}

// BenchmarkFig12b contrasts the baseline Bw-Tree and the OpenBw-Tree.
func BenchmarkFig12b(b *testing.B) {
	b.Run("BwTree/InsertOnly", func(b *testing.B) { benchInsertOnly(b, core.BaselineOptions(), ycsb.MonoInt) })
	b.Run("OpenBwTree/InsertOnly", func(b *testing.B) { benchInsertOnly(b, core.DefaultOptions(), ycsb.MonoInt) })
	b.Run("BwTree/ReadUpdate", func(b *testing.B) { benchReadUpdate(b, core.BaselineOptions(), ycsb.MonoInt) })
	b.Run("OpenBwTree/ReadUpdate", func(b *testing.B) { benchReadUpdate(b, core.DefaultOptions(), ycsb.MonoInt) })
}

// benchIndexWorkload drives any index through one workload, single
// goroutine (Fig. 13) — Fig. 14's parallel version is below.
func benchIndexWorkload(b *testing.B, mk func() index.Index, wl ycsb.Workload, kt ycsb.KeyType) {
	b.ReportAllocs()
	idx, ks := loadedIndex(mk, kt, benchKeys)
	defer idx.Close()
	s := idx.NewSession()
	defer s.Release()
	stream := ycsb.NewStream(wl, ks, 0, 77)
	var out []uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := stream.Next()
		switch op.Kind {
		case ycsb.OpRead:
			out = s.Lookup(op.Key, out[:0])
		case ycsb.OpUpdate:
			s.Update(op.Key, op.Value)
		case ycsb.OpInsert:
			s.Insert(op.Key, op.Value)
		case ycsb.OpScan:
			s.Scan(op.Key, op.ScanLen, func(k []byte, v uint64) bool { return true })
		}
	}
}

// BenchmarkFig13 is the single-threaded six-index comparison (§6.1).
func BenchmarkFig13(b *testing.B) {
	for _, mk := range index.All() {
		name := func() string { i := mk(); defer i.Close(); return i.Name() }()
		for _, wl := range []ycsb.Workload{ycsb.ReadOnly, ycsb.ReadUpdate, ycsb.ScanInsert} {
			b.Run(fmt.Sprintf("%s/%v/RandInt", name, wl), func(b *testing.B) {
				benchIndexWorkload(b, mk, wl, ycsb.RandInt)
			})
		}
	}
}

// BenchmarkFig14 is the multi-threaded comparison (§6.1): RunParallel
// over all available cores.
func BenchmarkFig14(b *testing.B) {
	for _, mk := range index.All() {
		name := func() string { i := mk(); defer i.Close(); return i.Name() }()
		b.Run(fmt.Sprintf("%s/ReadUpdate/RandInt", name), func(b *testing.B) {
			idx, ks := loadedIndex(mk, ycsb.RandInt, benchKeys)
			defer idx.Close()
			var worker atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := int(worker.Add(1))
				s := idx.NewSession()
				defer s.Release()
				stream := ycsb.NewStream(ycsb.ReadUpdate, ks, w, uint64(w)*29)
				var out []uint64
				for pb.Next() {
					op := stream.Next()
					if op.Kind == ycsb.OpRead {
						out = s.Lookup(op.Key, out[:0])
					} else {
						s.Update(op.Key, op.Value)
					}
				}
			})
		})
	}
}

// BenchmarkFig15 reports bytes-per-entry as allocation metrics (§6.1
// memory usage; B/op during loading approximates the per-entry cost).
func BenchmarkFig15(b *testing.B) {
	for _, mk := range index.All() {
		name := func() string { i := mk(); defer i.Close(); return i.Name() }()
		b.Run(name+"/LoadRandInt", func(b *testing.B) {
			b.ReportAllocs()
			idx := mk()
			defer idx.Close()
			ks := ycsb.NewKeySet(ycsb.RandInt, 0)
			s := idx.NewSession()
			defer s.Release()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Insert(ks.ExtraKey(), uint64(i))
			}
		})
	}
}

// BenchmarkTable3 measures Rand-Int Insert-only per-op cost for all six
// indexes with allocation counters — the software proxies of Table 3.
func BenchmarkTable3(b *testing.B) {
	for _, mk := range index.All() {
		name := func() string { i := mk(); defer i.Close(); return i.Name() }()
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			idx := mk()
			defer idx.Close()
			ks := ycsb.NewKeySet(ycsb.RandInt, 0)
			s := idx.NewSession()
			defer s.Release()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Insert(ks.ExtraKey(), uint64(i))
			}
		})
	}
}

// BenchmarkFig16 is the high-contention Mono-HC insert storm (§6.2).
func BenchmarkFig16(b *testing.B) {
	for _, mk := range index.All() {
		name := func() string { i := mk(); defer i.Close(); return i.Name() }()
		b.Run(name+"/MonoHC", func(b *testing.B) {
			idx := mk()
			defer idx.Close()
			ks := ycsb.NewKeySet(ycsb.MonoHC, 0)
			var worker atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := int(worker.Add(1))
				s := idx.NewSession()
				defer s.Release()
				for pb.Next() {
					s.Insert(ks.HCKey(w), 1)
				}
			})
		})
	}
}

// BenchmarkFig17 contrasts Mono-Int and Mono-HC inserts for the
// OpenBw-Tree (§6.2; the full six-index grid is `bwbench fig17`).
func BenchmarkFig17(b *testing.B) {
	b.Run("MonoInt", func(b *testing.B) { benchInsertOnly(b, core.DefaultOptions(), ycsb.MonoInt) })
	b.Run("MonoHC", func(b *testing.B) {
		t := core.New(core.DefaultOptions())
		defer t.Close()
		ks := ycsb.NewKeySet(ycsb.MonoHC, 0)
		var worker atomic.Uint64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			w := int(worker.Add(1))
			s := t.NewSession()
			defer s.Release()
			for pb.Next() {
				s.Insert(ks.HCKey(w), 1)
			}
		})
	})
}

// BenchmarkFig18 is the feature decomposition (§6.3).
func BenchmarkFig18(b *testing.B) {
	readOnly := func(b *testing.B, t *core.Tree, ks *ycsb.KeySet) {
		s := t.NewSession()
		defer s.Release()
		zipf := ycsb.NewScrambledZipfian(uint64(len(ks.Keys)), 5)
		var out []uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out = s.Lookup(ks.Keys[zipf.Next()], out[:0])
		}
	}
	b.Run("OpenBwTree/ReadOnly", func(b *testing.B) {
		t, ks := loadedTree(core.DefaultOptions(), ycsb.RandInt, benchKeys)
		defer t.Close()
		readOnly(b, t, ks)
	})
	b.Run("NoDeltaChains/ReadOnly", func(b *testing.B) {
		t, ks := loadedTree(core.DefaultOptions(), ycsb.RandInt, benchKeys)
		defer t.Close()
		t.ConsolidateAll()
		readOnly(b, t, ks)
	})
	b.Run("NoCAS/InsertOnly", func(b *testing.B) {
		opts := core.DefaultOptions()
		opts.UnsafeNoCAS = true
		benchInsertOnly(b, opts, ycsb.RandInt)
	})
	b.Run("NoMappingTable/ReadOnly", func(b *testing.B) {
		t, ks := loadedTree(core.DefaultOptions(), ycsb.RandInt, benchKeys)
		defer t.Close()
		frozen := t.Freeze()
		zipf := ycsb.NewScrambledZipfian(uint64(len(ks.Keys)), 5)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			frozen.Lookup(ks.Keys[zipf.Next()])
		}
	})
	b.Run("NoDeltaUpdates/InsertOnly", func(b *testing.B) {
		opts := core.DefaultOptions()
		opts.UnsafeNoCAS = true
		opts.InPlaceLeafUpdates = true
		benchInsertOnly(b, opts, ycsb.RandInt)
	})
	b.Run("BTreeOLC/InsertOnly", func(b *testing.B) {
		b.ReportAllocs()
		idx := index.NewBTree()
		defer idx.Close()
		ks := ycsb.NewKeySet(ycsb.RandInt, 0)
		s := idx.NewSession()
		defer s.Release()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Insert(ks.ExtraKey(), uint64(i))
		}
	})
}

// BenchmarkTable2 exercises the statistics collection used by Table 2.
func BenchmarkTable2(b *testing.B) {
	t, _ := loadedTree(core.DefaultOptions(), ycsb.RandInt, benchKeys)
	defer t.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t.StructureStats()
	}
}
