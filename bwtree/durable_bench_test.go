package bwtree

import (
	"encoding/binary"
	"testing"

	"repro/internal/wal"
)

// BenchmarkFoldRecover measures full-log recovery into an empty tree
// (decode + guarded fold + BulkLoad), the path behind the replay gate.
func BenchmarkFoldRecover(b *testing.B) {
	dir := b.TempDir()
	d, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		b.Fatal(err)
	}
	s := d.NewSession()
	buf := make([]byte, 8)
	const n = 500000
	for i := uint64(0); i < n; i++ {
		binary.BigEndian.PutUint64(buf, i)
		if _, err := s.Insert(buf, i); err != nil {
			b.Fatal(err)
		}
	}
	s.Release()
	if err := d.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := New(DefaultOptions())
		st, err := replayFold(t, dir, func(uint64) bool { return false })
		if err != nil || st.Records != n {
			b.Fatalf("st=%+v err=%v", st, err)
		}
		t.Close()
	}
	b.ReportMetric(float64(n), "records/op")
}

// BenchmarkReplayOnly isolates the raw log scan (read + CRC + decode)
// without applying anything, bounding how fast recovery could ever be.
func BenchmarkReplayOnly(b *testing.B) {
	dir := b.TempDir()
	d, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		b.Fatal(err)
	}
	s := d.NewSession()
	buf := make([]byte, 8)
	const n = 500000
	for i := uint64(0); i < n; i++ {
		binary.BigEndian.PutUint64(buf, i)
		if _, err := s.Insert(buf, i); err != nil {
			b.Fatal(err)
		}
	}
	s.Release()
	if err := d.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var cnt int
		st, err := wal.Replay(dir, 0, func(r wal.Record) error { cnt++; return nil })
		if err != nil || st.Records != n {
			b.Fatalf("st=%+v err=%v", st, err)
		}
	}
}
