package bwtree

import (
	"time"

	"repro/internal/obs"
)

// LatencySnapshot is a mergeable point-in-time copy of a tree's
// per-operation-class latency histograms (requires
// Options.LatencyHistograms). Obtain one with Tree.Latencies.
type LatencySnapshot = obs.LatencySnapshot

// TraceEvent is one structural event (split, merge, consolidate, abort,
// epoch advance) drained from the tracer (requires Options.TraceRingSize
// > 0). Obtain them with Tree.TraceEvents.
type TraceEvent = obs.Event

// DebugServer is a live HTTP debug surface over one tree.
type DebugServer = obs.Server

// OpSummary is one flight-recorder entry (requires
// Options.FlightRecorderSize > 0). Obtain them with Tree.FlightRecent.
type OpSummary = obs.OpSummary

// OpTrace is one sampled operation's phase breakdown (requires
// Options.PhaseSampleEvery > 0). Obtain them with Tree.PhaseTraces and
// export with WriteChromeTrace.
type OpTrace = obs.OpTrace

// WriteChromeTrace renders sampled phase traces as Chrome trace-event
// JSON, loadable in chrome://tracing and Perfetto.
var WriteChromeTrace = obs.WriteChromeTrace

// DebugVars builds the observability data source for t: counters and
// gauges from Stats, plus latency and trace feeds when the tree was
// built with them enabled. Useful for mounting the debug surface into an
// existing HTTP server via obs.Mux.
func DebugVars(t *Tree) obs.Vars {
	v := obs.Vars{
		Counters: func() map[string]uint64 {
			st := t.Stats()
			return map[string]uint64{
				"ops":            st.Ops,
				"aborts":         st.Aborts,
				"consolidations": st.Consolidations,
				"splits":         st.Splits,
				"merges":         st.Merges,
				"slab_full":      st.SlabFull,
				"pointer_chases": st.PointerChases,
				"cas_failures":   st.CASFailures,
				"gc_retired":     st.GC.Retired,
				"gc_reclaimed":   st.GC.Reclaimed,
				"gc_advances":    st.GC.Advances,
			}
		},
		Gauges: func() map[string]float64 {
			st := t.Stats()
			mt := t.MappingStats()
			return map[string]float64{
				"abort_rate":          st.AbortRate(),
				"leaf_prealloc_util":  st.LeafPreallocUtilization(),
				"inner_prealloc_util": st.InnerPreallocUtilization(),
				"epoch_lag":           float64(st.GC.EpochLag),
				"mapping_allocated":   float64(mt.Allocated),
				"mapping_free":        float64(mt.Free),
				"mapping_live":        float64(mt.Live),
				"mapping_occupancy":   float64(mt.Live) / float64(mt.Capacity),
			}
		},
	}
	// Served on demand at /debug/shape only: the walk visits every node,
	// which is far too expensive for the periodic sampler.
	v.Shape = func() map[string]any {
		st := t.StructureStats()
		return map[string]any{
			"height":               st.Height,
			"inner_nodes":          st.InnerNodes,
			"leaf_nodes":           st.LeafNodes,
			"avg_inner_chain_len":  st.AvgInnerChainLen,
			"avg_leaf_chain_len":   st.AvgLeafChainLen,
			"avg_inner_node_size":  st.AvgInnerNodeSize,
			"avg_leaf_node_size":   st.AvgLeafNodeSize,
			"inner_prealloc_util":  st.InnerPreallocUse,
			"leaf_prealloc_util":   st.LeafPreallocUse,
			"flat_bases":           st.FlatBases,
			"arena_bytes":          st.ArenaBytes,
			"inner_flat_bases":     st.InnerFlatBases,
			"inner_arena_bytes":    st.InnerArenaBytes,
			"key_bytes":            st.KeyBytes,
			"gc_ptrs_per_leaf":     st.GCPtrsPerLeaf,
			"gc_ptrs_per_inner":    st.GCPtrsPerInner,
			"leaf_bytes_per_entry": st.LeafBytesPerEntry,
		}
	}
	if t.Options().LatencyHistograms {
		v.Latency = t.Latencies
	}
	if t.Options().TraceRingSize > 0 {
		v.Trace = t.TraceEvents
		v.TraceDropped = t.TraceDropped
	}
	deepOn := t.Options().PhaseSampleEvery > 0 || t.Options().FlightRecorderSize > 0
	if deepOn {
		v.MetricHists = func() []obs.HistFeed {
			return []obs.HistFeed{{
				Name: "bwtree_chain_depth",
				Help: "Leaf delta-chain depth observed per operation.",
				Snap: t.ChainDepths(),
			}}
		}
	}
	if t.Options().FlightRecorderSize > 0 {
		v.Flight = t.FlightRecent
	}
	if t.Options().PhaseSampleEvery > 0 {
		v.PhaseTraces = t.PhaseTraces
	}
	return v
}

// DurableDebugVars is DebugVars over the wrapped tree plus the
// durability layer's health surface: WAL counters, flush-queue depth,
// group-commit batch and fsync-latency distributions, pending (appended
// but not yet durable) LSNs, and checkpoint age.
func DurableDebugVars(d *Durable) obs.Vars {
	v := DebugVars(d.Tree())
	treeCounters, treeGauges, treeHists := v.Counters, v.Gauges, v.MetricHists
	v.Counters = func() map[string]uint64 {
		m := treeCounters()
		ws := d.WALStats()
		m["wal_appends"] = ws.Appends
		m["wal_syncs"] = ws.Syncs
		m["wal_bytes"] = ws.Bytes
		m["wal_segments"] = ws.Segments
		return m
	}
	v.Gauges = func() map[string]float64 {
		m := treeGauges()
		ws := d.WALStats()
		m["wal_queue_bytes"] = float64(ws.QueueBytes)
		m["wal_queue_records"] = float64(ws.QueueRecords)
		m["wal_pending_lsns"] = float64(ws.AppendedLSN - ws.DurableLSN)
		m["checkpoint_age_seconds"] = d.CheckpointAge().Seconds()
		return m
	}
	v.MetricHists = func() []obs.HistFeed {
		var feeds []obs.HistFeed
		if treeHists != nil {
			feeds = treeHists()
		}
		ws := d.WALStats()
		return append(feeds,
			obs.HistFeed{
				Name: "bwtree_wal_fsync_seconds",
				Help: "WAL fsync wall time per group commit.",
				Snap: ws.Fsync, Seconds: true,
			},
			obs.HistFeed{
				Name: "bwtree_wal_batch_records",
				Help: "Records committed per WAL fsync (group-commit batch size).",
				Snap: ws.Batch,
			})
	}
	return v
}

// ServeDurableDebug is ServeDebug for a durable tree: the same surface
// extended with the WAL and checkpoint health gauges.
func ServeDurableDebug(d *Durable, addr string) (*DebugServer, error) {
	return obs.Serve(addr, DurableDebugVars(d), time.Second)
}

// ServeDebug starts an HTTP debug server for t on addr (host:port; port
// 0 picks a free one): expvar under /debug/vars (including a "bwtree"
// composite with per-second op rates), pprof under /debug/pprof/, and
// JSON endpoints /debug/stats, /debug/latency, /debug/shape, and
// /debug/trace. Close the returned server when done.
func ServeDebug(t *Tree, addr string) (*DebugServer, error) {
	return obs.Serve(addr, DebugVars(t), time.Second)
}
