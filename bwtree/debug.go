package bwtree

import (
	"time"

	"repro/internal/obs"
)

// LatencySnapshot is a mergeable point-in-time copy of a tree's
// per-operation-class latency histograms (requires
// Options.LatencyHistograms). Obtain one with Tree.Latencies.
type LatencySnapshot = obs.LatencySnapshot

// TraceEvent is one structural event (split, merge, consolidate, abort,
// epoch advance) drained from the tracer (requires Options.TraceRingSize
// > 0). Obtain them with Tree.TraceEvents.
type TraceEvent = obs.Event

// DebugServer is a live HTTP debug surface over one tree.
type DebugServer = obs.Server

// DebugVars builds the observability data source for t: counters and
// gauges from Stats, plus latency and trace feeds when the tree was
// built with them enabled. Useful for mounting the debug surface into an
// existing HTTP server via obs.Mux.
func DebugVars(t *Tree) obs.Vars {
	v := obs.Vars{
		Counters: func() map[string]uint64 {
			st := t.Stats()
			return map[string]uint64{
				"ops":            st.Ops,
				"aborts":         st.Aborts,
				"consolidations": st.Consolidations,
				"splits":         st.Splits,
				"merges":         st.Merges,
				"slab_full":      st.SlabFull,
				"pointer_chases": st.PointerChases,
				"cas_failures":   st.CASFailures,
				"gc_retired":     st.GC.Retired,
				"gc_reclaimed":   st.GC.Reclaimed,
				"gc_advances":    st.GC.Advances,
			}
		},
		Gauges: func() map[string]float64 {
			st := t.Stats()
			return map[string]float64{
				"abort_rate":          st.AbortRate(),
				"leaf_prealloc_util":  st.LeafPreallocUtilization(),
				"inner_prealloc_util": st.InnerPreallocUtilization(),
			}
		},
	}
	// Served on demand at /debug/shape only: the walk visits every node,
	// which is far too expensive for the periodic sampler.
	v.Shape = func() map[string]any {
		st := t.StructureStats()
		return map[string]any{
			"height":               st.Height,
			"inner_nodes":          st.InnerNodes,
			"leaf_nodes":           st.LeafNodes,
			"avg_inner_chain_len":  st.AvgInnerChainLen,
			"avg_leaf_chain_len":   st.AvgLeafChainLen,
			"avg_inner_node_size":  st.AvgInnerNodeSize,
			"avg_leaf_node_size":   st.AvgLeafNodeSize,
			"inner_prealloc_util":  st.InnerPreallocUse,
			"leaf_prealloc_util":   st.LeafPreallocUse,
			"flat_bases":           st.FlatBases,
			"arena_bytes":          st.ArenaBytes,
			"key_bytes":            st.KeyBytes,
			"gc_ptrs_per_leaf":     st.GCPtrsPerLeaf,
			"gc_ptrs_per_inner":    st.GCPtrsPerInner,
			"leaf_bytes_per_entry": st.LeafBytesPerEntry,
		}
	}
	if t.Options().LatencyHistograms {
		v.Latency = t.Latencies
	}
	if t.Options().TraceRingSize > 0 {
		v.Trace = t.TraceEvents
		v.TraceDropped = t.TraceDropped
	}
	return v
}

// ServeDebug starts an HTTP debug server for t on addr (host:port; port
// 0 picks a free one): expvar under /debug/vars (including a "bwtree"
// composite with per-second op rates), pprof under /debug/pprof/, and
// JSON endpoints /debug/stats, /debug/latency, /debug/shape, and
// /debug/trace. Close the returned server when done.
func ServeDebug(t *Tree, addr string) (*DebugServer, error) {
	return obs.Serve(addr, DebugVars(t), time.Second)
}
