package bwtree

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wal"
)

func dkey(i uint64) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

// TestDurableBasicRoundTrip exercises the whole lifecycle on one
// goroutine: write, checkpoint, write a tail, close, reopen, verify.
func TestDurableBasicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if ok, err := d.Insert(dkey(i), i); err != nil || !ok {
			t.Fatalf("Insert(%d) = %v, %v", i, ok, err)
		}
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		if ok, err := d.Update(dkey(i), i+1000); err != nil || !ok {
			t.Fatalf("Update(%d) = %v, %v", i, ok, err)
		}
	}
	for i := uint64(90); i < 100; i++ {
		if ok, err := d.Delete(dkey(i), i); err != nil || !ok {
			t.Fatalf("Delete(%d) = %v, %v", i, ok, err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	rec := d2.RecoveryStats()
	if rec.SnapshotKeys != 100 {
		t.Fatalf("recovery loaded %d snapshot keys, want 100", rec.SnapshotKeys)
	}
	if rec.Replayed != 60 {
		t.Fatalf("recovery replayed %d records, want 60", rec.Replayed)
	}
	s := d2.NewSession()
	defer s.Release()
	var out []uint64
	for i := uint64(0); i < 100; i++ {
		out = s.Lookup(dkey(i), out[:0])
		switch {
		case i < 50:
			if len(out) != 1 || out[0] != i+1000 {
				t.Fatalf("key %d = %v, want [%d]", i, out, i+1000)
			}
		case i < 90:
			if len(out) != 1 || out[0] != i {
				t.Fatalf("key %d = %v, want [%d]", i, out, i)
			}
		default:
			if len(out) != 0 {
				t.Fatalf("key %d = %v, want deleted", i, out)
			}
		}
	}
	if err := d2.Tree().Validate(); err != nil {
		t.Fatalf("Validate after recovery: %v", err)
	}
}

// TestDurableRecoverFreshLog recovers from a log with no checkpoint.
func TestDurableRecoverFreshLog(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 32; i++ {
		if _, err := d.Insert(dkey(i), i); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if rec := d2.RecoveryStats(); rec.SnapshotKeys != 0 || rec.Replayed != 32 {
		t.Fatalf("recovery stats = %+v", rec)
	}
	for i := uint64(0); i < 32; i++ {
		out, err := d2.Lookup(dkey(i), nil)
		if err != nil || len(out) != 1 || out[0] != i {
			t.Fatalf("key %d = %v, %v", i, out, err)
		}
	}
}

// workerLog records, per worker, the mirror of acknowledged state plus at
// most one unresolved operation (the one in flight when the crash hit).
type workerLog struct {
	mirror  map[uint64]uint64 // key index -> value; absent = deleted/never inserted
	pending *pendingOp
}

type pendingOp struct {
	op  byte
	key uint64
	val uint64
}

// TestDurableCrashRecoverMatrix is the acknowledged-write property test:
// concurrent writers with SyncOnCommit, a crash at a random moment, then
// recovery must show every acknowledged write and no impossible state.
// The matrix covers sync mode x checkpointing x crash timing.
func TestDurableCrashRecoverMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is slow")
	}
	for _, tc := range []struct {
		name       string
		sync       bool
		checkpoint bool
		crashAfter time.Duration
	}{
		{"sync-early-crash", true, false, 5 * time.Millisecond},
		{"sync-late-crash", true, false, 60 * time.Millisecond},
		{"sync-with-checkpoint", true, true, 60 * time.Millisecond},
		{"async-with-checkpoint", false, true, 60 * time.Millisecond},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			d, err := OpenDurable(dir, DurableOptions{SyncOnCommit: tc.sync})
			if err != nil {
				t.Fatal(err)
			}

			const workers = 4
			logs := make([]*workerLog, workers)
			var wg sync.WaitGroup
			var stop atomic.Bool
			for wi := 0; wi < workers; wi++ {
				logs[wi] = &workerLog{mirror: make(map[uint64]uint64)}
				wg.Add(1)
				go func(wi int, lg *workerLog) {
					defer wg.Done()
					s := d.NewSession()
					defer s.Release()
					rng := rand.New(rand.NewSource(int64(wi) * 7919))
					for i := 0; !stop.Load(); i++ {
						// Each worker owns the congruence class k = wi mod workers.
						k := uint64(wi) + uint64(rng.Intn(200))*workers
						key := dkey(k)
						old, exists := lg.mirror[k]
						var op byte
						var val uint64
						switch {
						case !exists:
							op, val = wal.OpInsert, uint64(i)<<8|uint64(wi)
						case rng.Intn(3) == 0:
							op, val = wal.OpDelete, old
						default:
							op, val = wal.OpUpdate, uint64(i)<<8|uint64(wi)
						}
						var ok bool
						var err error
						switch op {
						case wal.OpInsert:
							ok, err = s.Insert(key, val)
						case wal.OpUpdate:
							ok, err = s.Update(key, val)
						case wal.OpDelete:
							ok, err = s.Delete(key, old)
						}
						if err != nil {
							// Crashed mid-commit: the op may or may not have
							// become durable. Record it as unresolved.
							lg.pending = &pendingOp{op: op, key: k, val: val}
							return
						}
						if !ok {
							t.Errorf("worker %d: op %c on key %d unexpectedly returned false", wi, op, k)
							return
						}
						if tc.sync {
							// Acknowledged: must survive.
							if op == wal.OpDelete {
								delete(lg.mirror, k)
							} else {
								lg.mirror[k] = val
							}
						} else {
							// Async acks are not crash-durable; track state
							// only for pending-op bookkeeping. A crash may
							// roll back an arbitrary suffix, so this mirror
							// is not checked in async mode.
							if op == wal.OpDelete {
								delete(lg.mirror, k)
							} else {
								lg.mirror[k] = val
							}
						}
					}
				}(wi, logs[wi])
			}

			if tc.checkpoint {
				// Race a checkpoint against the writers.
				go func() {
					time.Sleep(tc.crashAfter / 2)
					d.Checkpoint() // error ignored: may race the crash
				}()
			}
			time.Sleep(tc.crashAfter)
			if err := d.Crash(); err != nil {
				t.Fatal(err)
			}
			stop.Store(true)
			wg.Wait()
			if err := d.Close(); err != nil {
				t.Fatalf("Close after crash: %v", err)
			}

			d2, err := OpenDurable(dir, DurableOptions{})
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer d2.Close()
			if err := d2.Tree().Validate(); err != nil {
				t.Fatalf("Validate after crash recovery: %v", err)
			}
			if !tc.sync {
				return // no per-key guarantees to check in async mode
			}
			s := d2.NewSession()
			defer s.Release()
			var out []uint64
			for wi, lg := range logs {
				pendingKey := uint64(1 << 62) // sentinel: no pending key
				if lg.pending != nil {
					pendingKey = lg.pending.key
				}
				for k, v := range lg.mirror {
					if k == pendingKey {
						continue // checked below with both outcomes allowed
					}
					out = s.Lookup(dkey(k), out[:0])
					if len(out) != 1 || out[0] != v {
						t.Errorf("worker %d: acked key %d = %v, want [%d]", wi, k, out, v)
					}
				}
				if lg.pending != nil {
					// The unresolved op either applied or it did not; both
					// states are legal, anything else is not.
					p := lg.pending
					out = s.Lookup(dkey(p.key), out[:0])
					before, had := lg.mirror[p.key]
					okBefore := (had && len(out) == 1 && out[0] == before) || (!had && len(out) == 0)
					var okAfter bool
					switch p.op {
					case wal.OpDelete:
						okAfter = len(out) == 0
					default:
						okAfter = len(out) == 1 && out[0] == p.val
					}
					if !okBefore && !okAfter {
						t.Errorf("worker %d: pending key %d = %v, want pre-state (%v,%d) or post-state (%c,%d)",
							wi, p.key, out, had, before, p.op, p.val)
					}
				}
			}
		})
	}
}

// TestDurableTornTail writes garbage after the last record and verifies
// recovery truncates it and still sees every synced write.
func TestDurableTornTail(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{SyncOnCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		if _, err := d.Insert(dkey(i), i); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := appendGarbageToLastSegment(dir, []byte{0x7, 0x3, 0x1, 0xff, 0xee, 0x55}); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	rec := d2.RecoveryStats()
	if !rec.TornTail {
		t.Fatal("torn tail not detected")
	}
	if rec.Replayed != 20 {
		t.Fatalf("replayed %d, want 20", rec.Replayed)
	}
	for i := uint64(0); i < 20; i++ {
		out, err := d2.Lookup(dkey(i), nil)
		if err != nil || len(out) != 1 || out[0] != i {
			t.Fatalf("key %d = %v, %v", i, out, err)
		}
	}
	// And the truncation is sticky: a third open sees a clean log.
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	d3, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if d3.RecoveryStats().TornTail {
		t.Fatal("torn tail reported again after truncation")
	}
}

// TestDurableCheckpointConcurrentWriters checkpoints while writers run
// and verifies recovery converges to the writers' final state.
func TestDurableCheckpointConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const perWorker = 2000
	var wg sync.WaitGroup
	finals := make([]map[uint64]uint64, workers)
	for wi := 0; wi < workers; wi++ {
		finals[wi] = make(map[uint64]uint64)
		wg.Add(1)
		go func(wi int, final map[uint64]uint64) {
			defer wg.Done()
			s := d.NewSession()
			defer s.Release()
			rng := rand.New(rand.NewSource(int64(wi)))
			for i := 0; i < perWorker; i++ {
				k := uint64(wi) + uint64(rng.Intn(500))*workers
				key := dkey(k)
				if old, ok := final[k]; ok {
					if rng.Intn(4) == 0 {
						if _, err := s.Delete(key, old); err != nil {
							t.Error(err)
							return
						}
						delete(final, k)
					} else {
						v := uint64(i+1) << 8
						if _, err := s.Update(key, v); err != nil {
							t.Error(err)
							return
						}
						final[k] = v
					}
				} else {
					v := uint64(i+1) << 8
					if _, err := s.Insert(key, v); err != nil {
						t.Error(err)
						return
					}
					final[k] = v
				}
			}
		}(wi, finals[wi])
	}
	// Several checkpoints racing the writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 3; i++ {
			if _, err := d.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if err := d2.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
	s := d2.NewSession()
	defer s.Release()
	var out []uint64
	total := 0
	for wi, final := range finals {
		for k, v := range final {
			out = s.Lookup(dkey(k), out[:0])
			if len(out) != 1 || out[0] != v {
				t.Fatalf("worker %d key %d = %v, want [%d]", wi, k, out, v)
			}
			total++
		}
		// Deleted keys must stay deleted: sample the worker's class.
		for k := uint64(wi); k < 500*workers; k += workers {
			if _, ok := final[k]; ok {
				continue
			}
			out = s.Lookup(dkey(k), out[:0])
			if len(out) != 0 {
				t.Fatalf("worker %d key %d = %v, want absent", wi, k, out)
			}
		}
	}
	if total == 0 {
		t.Fatal("no keys survived — workload bug")
	}
}

// TestSnapshotRefusesDurableDir: writing an LSN-0 snapshot into a
// directory that already holds a store would make the next open replay
// the old log on top of the new tree — Snapshot must refuse.
func TestSnapshotRefusesDurableDir(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert([]byte("k"), 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	tr := New(DefaultOptions())
	defer tr.Close()
	if _, err := Snapshot(tr, dir); err == nil {
		t.Fatal("Snapshot into a populated durable dir succeeded, want error")
	}
	// A fresh directory is fine.
	if n, err := Snapshot(tr, t.TempDir()); err != nil || n != 0 {
		t.Fatalf("Snapshot into fresh dir: n=%d err=%v", n, err)
	}
}

// TestDurableRejectsNonUnique: the log records one value per key and
// replay depends on unique-key guarded semantics.
func TestDurableRejectsNonUnique(t *testing.T) {
	o := DurableOptions{}
	o.Tree.NonUnique = true
	if _, err := OpenDurable(t.TempDir(), o); err == nil {
		t.Fatal("OpenDurable with NonUnique succeeded, want error")
	}
}

// TestDurableCheckpointStripeBarrier reconstructs the lost-write race
// the stripe sweep in Checkpoint exists to close: a committer that has
// appended its record (so its LSN is <= the checkpoint's cpLSN) but has
// not yet applied it to the tree still holds its stripe lock. The
// checkpoint must wait for that stripe before walking — otherwise the
// snapshot misses the op, and replay (which starts strictly after the
// manifest LSN) skips it too, silently dropping an acknowledged write.
func TestDurableCheckpointStripeBarrier(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if _, err := d.Insert(dkey(i), i+1); err != nil {
			t.Fatal(err)
		}
	}

	// Emulate DurableSession.commit descheduled between Append and
	// apply: take the stripe, append, and park.
	key := dkey(1000)
	st := d.stripe(key)
	st.Lock()
	if _, err := d.w.Append(wal.OpInsert, key, 42); err != nil {
		st.Unlock()
		t.Fatal(err)
	}

	type cpResult struct {
		lsn uint64
		err error
	}
	cpc := make(chan cpResult, 1)
	go func() {
		lsn, err := d.Checkpoint()
		cpc <- cpResult{lsn, err}
	}()

	// The checkpoint reads cpLSN (>= our record's LSN) and must then
	// block in the stripe sweep. Give it time to get there, then finish
	// the commit the way the committer would have.
	time.Sleep(50 * time.Millisecond)
	select {
	case r := <-cpc:
		t.Fatalf("Checkpoint finished while a committer held its stripe: lsn=%d err=%v", r.lsn, r.err)
	default:
	}
	s := d.t.NewSession()
	s.Insert(key, 42)
	s.Release()
	st.Unlock()

	if r := <-cpc; r.err != nil {
		t.Fatal(r.err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	out, err := d2.Lookup(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 42 {
		t.Fatalf("acknowledged write lost across checkpoint+reopen: got %v, want [42]", out)
	}
}

// TestDurableConcurrentCheckpoints: overlapping Checkpoint calls must
// serialize. Without cpMu, two interleaved WriteCheckpoint calls can
// each publish a manifest and then prune the other's snapshot, leaving
// the surviving manifest pointing at a deleted file — the next
// OpenDurable fails.
func TestDurableConcurrentCheckpoints(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		s := d.NewSession()
		defer s.Release()
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Insert(dkey(i%5000), i); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var cwg sync.WaitGroup
	for g := 0; g < 4; g++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for i := 0; i < 3; i++ {
				if _, err := d.Checkpoint(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	cwg.Wait()
	close(stop)
	wwg.Wait()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatalf("reopen after concurrent checkpoints: %v", err)
	}
	defer d2.Close()
	if err := d2.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCheckpointCloseRace: Close must wait for an in-flight
// Checkpoint instead of releasing the tree and writer underneath its
// walk. Run under -race this catches the use-after-close.
func TestDurableCheckpointCloseRace(t *testing.T) {
	for iter := 0; iter < 10; iter++ {
		dir := t.TempDir()
		d, err := OpenDurable(dir, DurableOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 2000; i++ {
			if _, err := d.Insert(dkey(i), i); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, err := d.Checkpoint(); err != nil {
					if !errors.Is(err, ErrDurableClosed) && !errors.Is(err, wal.ErrClosed) {
						t.Errorf("checkpoint racing close: %v", err)
					}
					return
				}
			}
		}()
		time.Sleep(time.Duration(iter) * 100 * time.Microsecond)
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
	}
}
