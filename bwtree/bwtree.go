// Package bwtree is the public API of the OpenBw-Tree: a lock-free,
// ordered, in-memory index mapping non-empty byte-string keys to 64-bit
// values, implemented after "Building a Bw-Tree Takes More Than Just Buzz
// Words" (SIGMOD 2018).
//
// # Model
//
// The tree never updates nodes in place. Mutations append delta records to
// a per-node chain and publish them with one compare-and-swap on a central
// mapping table; readers replay the chain. Chains are periodically
// consolidated into fresh immutable base nodes, and nodes split and merge
// through multi-stage lock-free protocols that concurrent threads help
// complete. Memory reclamation is epoch-based.
//
// # Usage
//
// All operations go through a per-goroutine Session:
//
//	t := bwtree.New(bwtree.DefaultOptions())
//	defer t.Close()
//
//	s := t.NewSession()
//	defer s.Release()
//
//	s.Insert([]byte("k"), 42)
//	vals := s.Lookup([]byte("k"), nil)
//
// Sessions bundle the goroutine's epoch-GC handle and scratch buffers; the
// Tree itself is safe for any number of concurrent sessions.
//
// Keys must be non-empty and binary-comparable (encode integers
// big-endian). Keys passed to mutating operations are copied; lookup keys
// are not retained.
//
// Set Options.NonUnique to store multiple values per key (§3.1 of the
// paper); iteration is available through Session.NewIterator and
// Session.Scan/ScanReverse (§3.2).
package bwtree

import "repro/internal/core"

// Tree is a lock-free Bw-Tree index. See the package documentation.
type Tree = core.Tree

// Session is a single goroutine's handle to a Tree.
type Session = core.Session

// Iterator supports ordered forward and backward traversal over a Tree.
type Iterator = core.Iterator

// Options configures a Tree.
type Options = core.Options

// Stats is a point-in-time aggregate of a Tree's internal counters.
type Stats = core.Stats

// StructureStats summarizes node shapes and pre-allocation utilization
// (Table 2 of the paper).
type StructureStats = core.StructureStats

// GCScheme selects the epoch-based garbage-collection variant.
type GCScheme = core.GCScheme

// GC scheme values.
const (
	GCDecentralized = core.GCDecentralized
	GCCentralized   = core.GCCentralized
)

// PathStep is one hop of a diagnostic Tree.DescendPath walk.
type PathStep = core.PathStep

// FormatPath renders a Tree.DescendPath result as an indented
// multi-line dump, one hop per line.
func FormatPath(steps []PathStep) string { return core.FormatPath(steps) }

// New returns an empty tree configured by opts.
func New(opts Options) *Tree { return core.New(opts) }

// DefaultOptions is the OpenBw-Tree configuration from the paper's
// evaluation: every optimization on, decentralized GC.
func DefaultOptions() Options { return core.DefaultOptions() }

// BaselineOptions is the "good-faith original Bw-Tree" configuration:
// every optimization off, centralized GC.
func BaselineOptions() Options { return core.BaselineOptions() }
