package bwtree

import (
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if err := json.Unmarshal(body, into); err != nil {
		t.Fatalf("GET %s: bad JSON: %v\n%s", url, err, body)
	}
}

func TestDebugServer(t *testing.T) {
	opts := DefaultOptions()
	opts.LatencyHistograms = true
	opts.TraceRingSize = 1024
	tr := New(opts)
	defer tr.Close()

	s := tr.NewSession()
	defer s.Release()
	key := make([]byte, 8)
	for i := uint64(0); i < 2000; i++ {
		binary.BigEndian.PutUint64(key, i)
		s.Insert(key, i)
	}
	for i := uint64(0); i < 2000; i++ {
		binary.BigEndian.PutUint64(key, i)
		s.Lookup(key, nil)
	}

	srv, err := ServeDebug(tr, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// /debug/stats: counters, gauges and latency quantiles.
	var stats struct {
		Counters map[string]uint64             `json:"counters"`
		Gauges   map[string]float64            `json:"gauges"`
		Latency  map[string]map[string]float64 `json:"latency"`
	}
	getJSON(t, base+"/debug/stats", &stats)
	if got := stats.Counters["ops"]; got != 4000 {
		t.Fatalf("counters.ops = %d, want 4000", got)
	}
	if _, ok := stats.Gauges["abort_rate"]; !ok {
		t.Fatal("gauges missing abort_rate")
	}
	ins, ok := stats.Latency["insert"]
	if !ok {
		t.Fatalf("latency summary missing insert class: %v", stats.Latency)
	}
	if ins["count"] != 2000 || ins["p99_us"] <= 0 {
		t.Fatalf("insert latency = %v, want count 2000 and positive p99", ins)
	}

	// /debug/vars: standard expvar JSON with our composite under "bwtree".
	var vars struct {
		Bwtree struct {
			Counters map[string]uint64 `json:"counters"`
		} `json:"bwtree"`
	}
	getJSON(t, base+"/debug/vars", &vars)
	if got := vars.Bwtree.Counters["ops"]; got != 4000 {
		t.Fatalf("expvar bwtree.counters.ops = %d, want 4000", got)
	}

	// /debug/latency mirrors the summary.
	var lat map[string]map[string]float64
	getJSON(t, base+"/debug/latency", &lat)
	if _, ok := lat["read"]; !ok {
		t.Fatal("/debug/latency missing read class")
	}

	// /debug/trace drains events; a second drain comes back empty.
	var trace struct {
		Events  []TraceEvent `json:"events"`
		Dropped uint64       `json:"dropped"`
	}
	getJSON(t, base+"/debug/trace", &trace)
	if len(trace.Events) == 0 {
		t.Fatal("no trace events after 2000 inserts")
	}
	var again struct {
		Events []TraceEvent `json:"events"`
	}
	getJSON(t, base+"/debug/trace", &again)
	if len(again.Events) != 0 {
		t.Fatalf("second trace drain returned %d events, want 0", len(again.Events))
	}

	// The index page lists the mounted endpoints.
	resp, err := http.Get(base + "/debug")
	if err != nil {
		t.Fatalf("GET /debug: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if want := "/debug/pprof/"; !strings.Contains(string(body), want) {
		t.Fatalf("index page missing %q:\n%s", want, body)
	}
}

func TestDebugServerDisabledSurfaces(t *testing.T) {
	// Default options: no histograms, no tracer — those endpoints 404
	// but counters still serve.
	tr := New(DefaultOptions())
	defer tr.Close()
	srv, err := ServeDebug(tr, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	for _, path := range []string{"/debug/latency", "/debug/trace"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
	var stats struct {
		Counters map[string]uint64 `json:"counters"`
	}
	getJSON(t, base+"/debug/stats", &stats)
	if _, ok := stats.Counters["ops"]; !ok {
		t.Fatal("stats missing counters.ops")
	}
}
