package bwtree

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// appendGarbageToLastSegment simulates a torn write by appending junk
// bytes to the newest log segment in dir.
func appendGarbageToLastSegment(dir string, junk []byte) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var segs []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) == 0 {
		return errors.New("no segments to corrupt")
	}
	sort.Strings(segs)
	f, err := os.OpenFile(filepath.Join(dir, segs[len(segs)-1]), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(junk)
	return err
}
