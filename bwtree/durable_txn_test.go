package bwtree

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/wal"
)

// applyTxnOps mirrors the transaction layer's in-memory install for
// low-level protocol tests (the real engine lives in internal/txn).
func applyTxnOps(d *Durable, ops []wal.TxnOp) {
	s := d.Tree().NewSession()
	defer s.Release()
	for _, op := range ops {
		switch op.Op {
		case wal.OpInsert:
			s.Insert(op.Key, op.Value)
		case wal.OpUpdate:
			s.Update(op.Key, op.Value)
		case wal.OpDelete:
			s.Delete(op.Key, op.Value)
		}
	}
}

func lookup1(t *testing.T, d *Durable, key []byte) (uint64, bool) {
	t.Helper()
	out, err := d.Lookup(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		return 0, false
	}
	return out[0], true
}

// TestDurableTxnReplay covers the three record kinds on both replay
// paths (fold without a checkpoint, parallel with one): a self-contained
// OpTxn applies, a prepare without a surviving decision presumes abort,
// and a prepare plus decision applies.
func TestDurableTxnReplay(t *testing.T) {
	for _, withCP := range []bool{false, true} {
		dir := t.TempDir()
		d, err := OpenDurable(dir, DurableOptions{SyncOnCommit: true})
		if err != nil {
			t.Fatal(err)
		}
		// Baseline singles, optionally folded into a checkpoint so the
		// reopen takes the parallel tail-replay path.
		for i := uint64(0); i < 10; i++ {
			if _, err := d.Insert(dkey(i), i); err != nil {
				t.Fatal(err)
			}
		}
		if withCP {
			if _, err := d.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}

		commit := []wal.TxnOp{
			{Op: wal.OpInsert, Key: dkey(100), Value: 100},
			{Op: wal.OpUpdate, Key: dkey(1), Value: 111},
			{Op: wal.OpDelete, Key: dkey(2)},
		}
		if _, err := d.AppendTxn(wal.OpTxn, 7, commit); err != nil {
			t.Fatal(err)
		}
		applyTxnOps(d, commit)

		orphan := []wal.TxnOp{{Op: wal.OpInsert, Key: dkey(200), Value: 200}}
		if _, err := d.AppendTxn(wal.OpTxnPrep, 8, orphan); err != nil {
			t.Fatal(err)
		}
		// No decision for 8, and no in-memory apply either: the two-phase
		// protocol only applies after the decision is appended.

		decided := []wal.TxnOp{{Op: wal.OpInsert, Key: dkey(300), Value: 300}}
		if _, err := d.AppendTxn(wal.OpTxnPrep, 9, decided); err != nil {
			t.Fatal(err)
		}
		if _, err := d.AppendTxn(wal.OpTxnCommit, 9, nil); err != nil {
			t.Fatal(err)
		}
		applyTxnOps(d, decided)

		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		d2, err := OpenDurable(dir, DurableOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := lookup1(t, d2, dkey(100)); !ok || v != 100 {
			t.Fatalf("withCP=%v: txn insert lost: %d %v", withCP, v, ok)
		}
		if v, ok := lookup1(t, d2, dkey(1)); !ok || v != 111 {
			t.Fatalf("withCP=%v: txn update lost: %d %v", withCP, v, ok)
		}
		if _, ok := lookup1(t, d2, dkey(2)); ok {
			t.Fatalf("withCP=%v: txn delete lost", withCP)
		}
		if _, ok := lookup1(t, d2, dkey(200)); ok {
			t.Fatalf("withCP=%v: undecided prepare applied", withCP)
		}
		if v, ok := lookup1(t, d2, dkey(300)); !ok || v != 300 {
			t.Fatalf("withCP=%v: decided prepare not applied: %d %v", withCP, v, ok)
		}
		if got := d2.RecoveryStats().MaxTxnID; got != 9 {
			t.Fatalf("withCP=%v: MaxTxnID = %d, want 9", withCP, got)
		}
		if err := d2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDurableTxnTornTail truncates the log mid-frame through a multi-key
// commit record and proves recovery drops the whole write set — the
// atomicity guarantee under a torn write.
func TestDurableTxnTornTail(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{SyncOnCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert(dkey(1), 1); err != nil {
		t.Fatal(err)
	}
	last := []wal.TxnOp{
		{Op: wal.OpInsert, Key: dkey(50), Value: 50},
		{Op: wal.OpInsert, Key: dkey(51), Value: 51},
		{Op: wal.OpUpdate, Key: dkey(1), Value: 999},
	}
	if _, err := d.AppendTxn(wal.OpTxn, 5, last); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Shear the final frame: cut a few bytes off the newest segment so
	// the txn record's CRC no longer covers its payload.
	if err := truncateLastSegment(dir, 3); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if !d2.RecoveryStats().TornTail {
		t.Fatal("torn tail not detected")
	}
	// None of the three sub-ops may have applied.
	if _, ok := lookup1(t, d2, dkey(50)); ok {
		t.Fatal("half-applied torn txn: key 50 present")
	}
	if _, ok := lookup1(t, d2, dkey(51)); ok {
		t.Fatal("half-applied torn txn: key 51 present")
	}
	if v, ok := lookup1(t, d2, dkey(1)); !ok || v != 1 {
		t.Fatalf("half-applied torn txn: key 1 = %d %v, want 1", v, ok)
	}
}

// truncateLastSegment shears n bytes off the newest log segment,
// simulating a torn write ending inside the final record's frame.
func truncateLastSegment(dir string, n int64) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var segs []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg") {
			segs = append(segs, e.Name())
		}
	}
	sort.Strings(segs)
	p := filepath.Join(dir, segs[len(segs)-1])
	fi, err := os.Stat(p)
	if err != nil {
		return err
	}
	return os.Truncate(p, fi.Size()-n)
}

// TestDurableTxnCrashLosesWholeRecord: a buffered (never-synced) txn
// record disappears entirely on crash — trivially atomic.
func TestDurableTxnCrashLosesWholeRecord(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{SyncOnCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert(dkey(1), 1); err != nil {
		t.Fatal(err)
	}
	ops := []wal.TxnOp{
		{Op: wal.OpUpdate, Key: dkey(1), Value: 2},
		{Op: wal.OpInsert, Key: dkey(2), Value: 2},
	}
	if _, err := d.AppendTxn(wal.OpTxn, 3, ops); err != nil {
		t.Fatal(err)
	}
	applyTxnOps(d, ops) // applied in memory, never synced
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if v, ok := lookup1(t, d2, dkey(1)); !ok || v != 1 {
		t.Fatalf("key 1 = %d %v, want pre-txn value 1", v, ok)
	}
	if _, ok := lookup1(t, d2, dkey(2)); ok {
		t.Fatal("unsynced txn partially survived")
	}
}
