package bwtree

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// hammer GETs url repeatedly until stop, handing each 200 body to check.
// Run it under -race against a mutating tree: it proves the debug
// surfaces never observe torn state and never serve unparseable output.
func hammer(t *testing.T, url string, stop *atomic.Bool, check func([]byte) error) {
	t.Helper()
	for !stop.Load() {
		resp, err := http.Get(url)
		if err != nil {
			t.Errorf("GET %s: %v", url, err)
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Errorf("GET %s: read: %v", url, err)
			return
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", url, resp.StatusCode)
			return
		}
		if err := check(body); err != nil {
			t.Errorf("GET %s: %v\n%s", url, err, body)
			return
		}
	}
}

// mutateLoad runs nw workers over a mixed single-op workload until stop.
func mutateLoad(stop *atomic.Bool, nw int, newSession func() interface {
	Release()
}, work func(s any, i uint64)) *sync.WaitGroup {
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := newSession()
			defer s.Release()
			for i := uint64(w); !stop.Load(); i += uint64(nw) {
				work(s, i)
			}
		}(w)
	}
	return &wg
}

func checkPrometheus(body []byte) error {
	n, err := obs.ParsePrometheus(strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("no samples")
	}
	return nil
}

func checkFlightrec(body []byte) error {
	var fr struct {
		Ops   []OpSummary `json:"ops"`
		Count int         `json:"count"`
	}
	if err := json.Unmarshal(body, &fr); err != nil {
		return err
	}
	if len(fr.Ops) != fr.Count {
		return fmt.Errorf("count %d != len(ops) %d", fr.Count, len(fr.Ops))
	}
	for _, op := range fr.Ops {
		if op.Dur < 0 {
			return fmt.Errorf("negative duration in %+v", op)
		}
	}
	return nil
}

func checkShape(body []byte) error {
	var shape map[string]any
	if err := json.Unmarshal(body, &shape); err != nil {
		return err
	}
	if _, ok := shape["leaf_nodes"]; !ok {
		return fmt.Errorf("missing leaf_nodes")
	}
	return nil
}

// TestDebugSurfacesUnderMutation hammers /metrics, /debug/shape, and
// /debug/flightrec while worker goroutines mutate a deep-traced tree.
// Meaningful under -race; the parse checks also catch torn text output.
func TestDebugSurfacesUnderMutation(t *testing.T) {
	opts := DefaultOptions()
	opts.LatencyHistograms = true
	opts.TraceRingSize = 1024
	opts.PhaseSampleEvery = 8
	opts.PhaseTraceBuffer = 1024
	opts.FlightRecorderSize = 128
	tr := New(opts)
	defer tr.Close()

	srv, err := ServeDebug(tr, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	var stop atomic.Bool
	wg := mutateLoad(&stop, 4, func() interface{ Release() } { return tr.NewSession() },
		func(s any, i uint64) {
			ses := s.(*Session)
			key := make([]byte, 8)
			binary.BigEndian.PutUint64(key, i%100_000)
			switch i % 5 {
			case 0:
				ses.Insert(key, i)
			case 1:
				ses.Update(key, i)
			case 2:
				ses.Lookup(key, nil)
			case 3:
				ses.Delete(key, i)
			default:
				ses.Scan(key, 8, func([]byte, uint64) bool { return true })
			}
		})

	var hwg sync.WaitGroup
	for url, check := range map[string]func([]byte) error{
		base + "/metrics":           checkPrometheus,
		base + "/debug/shape":       checkShape,
		base + "/debug/flightrec":   checkFlightrec,
		base + "/debug/phasetrace":  checkChromeTraceBody,
		base + "/debug/flightrec?n=7": checkFlightrec,
	} {
		hwg.Add(1)
		go func(url string, check func([]byte) error) {
			defer hwg.Done()
			hammer(t, url, &stop, check)
		}(url, check)
	}

	time.Sleep(500 * time.Millisecond)
	stop.Store(true)
	hwg.Wait()
	wg.Wait()
}

func checkChromeTraceBody(body []byte) error {
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	return json.Unmarshal(body, &doc)
}

// TestDurableDebugSurfacesUnderMutation is the durable variant: WAL
// gauges and checkpoint age serve concurrently with committing sessions
// and a checkpoint mid-run.
func TestDurableDebugSurfacesUnderMutation(t *testing.T) {
	topts := DefaultOptions()
	topts.LatencyHistograms = true
	topts.PhaseSampleEvery = 8
	topts.PhaseTraceBuffer = 1024
	topts.FlightRecorderSize = 128
	d, err := OpenDurable(t.TempDir(), DurableOptions{Tree: topts, SyncOnCommit: false})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	defer d.Close()

	srv, err := ServeDurableDebug(d, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeDurableDebug: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	var stop atomic.Bool
	wg := mutateLoad(&stop, 4, func() interface{ Release() } { return d.NewSession() },
		func(s any, i uint64) {
			ses := s.(*DurableSession)
			key := make([]byte, 8)
			binary.BigEndian.PutUint64(key, i%50_000)
			switch i % 4 {
			case 0:
				ses.Insert(key, i)
			case 1:
				ses.Update(key, i)
			case 2:
				ses.Lookup(key, nil)
			default:
				ses.Delete(key, i)
			}
		})

	checkDurableMetrics := func(body []byte) error {
		if err := checkPrometheus(body); err != nil {
			return err
		}
		for _, want := range []string{"bwtree_wal_queue_records", "bwtree_checkpoint_age_seconds", "bwtree_epoch_lag"} {
			if !strings.Contains(string(body), want) {
				return fmt.Errorf("missing %s", want)
			}
		}
		return nil
	}

	var hwg sync.WaitGroup
	for url, check := range map[string]func([]byte) error{
		base + "/metrics":         checkDurableMetrics,
		base + "/debug/shape":     checkShape,
		base + "/debug/flightrec": checkFlightrec,
	} {
		hwg.Add(1)
		go func(url string, check func([]byte) error) {
			defer hwg.Done()
			hammer(t, url, &stop, check)
		}(url, check)
	}

	time.Sleep(200 * time.Millisecond)
	if _, err := d.Checkpoint(); err != nil {
		t.Errorf("Checkpoint: %v", err)
	}
	time.Sleep(200 * time.Millisecond)
	stop.Store(true)
	hwg.Wait()
	wg.Wait()

	if age := d.CheckpointAge(); age > time.Minute {
		t.Errorf("CheckpointAge = %v after fresh checkpoint", age)
	}
}
