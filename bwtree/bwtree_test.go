package bwtree_test

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"repro/bwtree"
)

func key(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// TestPublicAPI exercises the whole exported surface the way the package
// documentation advertises it.
func TestPublicAPI(t *testing.T) {
	tr := bwtree.New(bwtree.DefaultOptions())
	defer tr.Close()

	s := tr.NewSession()
	defer s.Release()

	for i := uint64(0); i < 10000; i++ {
		if !s.Insert(key(i), i) {
			t.Fatalf("insert %d", i)
		}
	}
	if s.Insert(key(5), 99) {
		t.Fatal("duplicate insert accepted")
	}
	if !s.Update(key(5), 55) {
		t.Fatal("update failed")
	}
	if got := s.Lookup(key(5), nil); len(got) != 1 || got[0] != 55 {
		t.Fatalf("lookup: %v", got)
	}
	if !s.Delete(key(5), 0) {
		t.Fatal("delete failed")
	}

	count := 0
	s.Scan(key(0), 100000, func(k []byte, v uint64) bool { count++; return true })
	if count != 9999 {
		t.Fatalf("scan count %d", count)
	}

	it := s.NewIterator()
	it.Seek(key(100))
	if !it.Valid() || binary.BigEndian.Uint64(it.Key()) != 100 {
		t.Fatal("iterator seek")
	}
	it.Prev()
	if binary.BigEndian.Uint64(it.Key()) != 99 {
		t.Fatal("iterator prev")
	}

	if st := tr.Stats(); st.Ops == 0 {
		t.Fatal("no ops recorded")
	}
	if st := tr.StructureStats(); st.LeafNodes == 0 {
		t.Fatal("no structure stats")
	}
}

func TestBaselineOptionsWork(t *testing.T) {
	tr := bwtree.New(bwtree.BaselineOptions())
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()
	for i := uint64(0); i < 5000; i++ {
		s.Insert(key(i), i)
	}
	for i := uint64(0); i < 5000; i++ {
		if got := s.Lookup(key(i), nil); len(got) != 1 || got[0] != i {
			t.Fatalf("lookup %d: %v", i, got)
		}
	}
}

func TestConcurrentSessions(t *testing.T) {
	tr := bwtree.New(bwtree.DefaultOptions())
	defer tr.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := tr.NewSession()
			defer s.Release()
			for i := 0; i < 5000; i++ {
				k := []byte(fmt.Sprintf("w%d-%06d", w, i))
				if !s.Insert(k, uint64(i)) {
					t.Errorf("insert %s failed", k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Count(); got != 8*5000 {
		t.Fatalf("count %d", got)
	}
}

// Example-style documentation test.
func ExampleTree() {
	t := bwtree.New(bwtree.DefaultOptions())
	defer t.Close()

	s := t.NewSession()
	defer s.Release()

	s.Insert([]byte("apple"), 120)
	s.Insert([]byte("banana"), 45)
	s.Scan([]byte("a"), 10, func(k []byte, v uint64) bool {
		fmt.Printf("%s=%d\n", k, v)
		return true
	})
	// Output:
	// apple=120
	// banana=45
}
