package bwtree

import (
	"errors"
	"fmt"
	"hash/maphash"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/wal"
)

// DurableOptions configures OpenDurable.
type DurableOptions struct {
	// Tree configures the in-memory index. Zero-value fields are filled
	// with defaults as in New.
	Tree Options
	// WAL configures the log writer (segment size, group-commit interval
	// and size, NoSync).
	WAL wal.Options
	// SyncOnCommit makes every mutating operation wait until its log
	// record is fsynced before returning — the acknowledged-write
	// guarantee. When false, mutations return after the record is
	// buffered; durability lags by one group-commit flush and a crash may
	// lose the most recent acknowledgements (bounded by Sync/Checkpoint
	// calls). The in-memory result is identical either way.
	SyncOnCommit bool
	// TxnCommitted resolves two-phase transaction prepares found during
	// recovery: a surviving OpTxnPrep record applies iff this reports its
	// transaction ID committed. Leave nil for standalone stores — they
	// then resolve decisions from their own log (a prep is committed iff
	// an OpTxnCommit for its ID survives here). A sharded store passes a
	// store-level resolver so a decision surviving in any participant's
	// log commits the prepares in all of them.
	TxnCommitted func(txnID uint64) bool
}

// Durable wraps a Tree with write-ahead logging, epoch-consistent
// checkpoints, and crash recovery (see internal/wal for the on-disk
// format). Every mutation is logged before it is applied; recovery
// rebuilds the tree from the newest checkpoint snapshot via BulkLoad and
// replays the log tail.
//
// Concurrency: obtain one DurableSession per goroutine, exactly as with
// Tree. Commit ordering between conflicting operations is established by
// a striped lock held across the log-append + tree-apply pair, so the
// log's LSN order agrees with the tree's apply order for any single key —
// the property replay depends on. Checkpoint runs concurrently with
// writers.
type Durable struct {
	t   *Tree
	w   *wal.Writer
	dir string
	o   DurableOptions
	rec RecoveryStats

	// stripes serialize log-append+apply for conflicting keys. 256 ways
	// keeps disjoint-key concurrency while making same-key commit order
	// deterministic.
	stripes [256]sync.Mutex
	seed    maphash.Seed

	mu     sync.Mutex // guards the closed flag and the convenience session
	closed bool
	convs  *Session // lazy session backing the convenience methods

	// lastCP is the wall-clock UnixNano of the last durability baseline:
	// set at open (recovery establishes one) and on every successful
	// Checkpoint. Feeds the checkpoint-age health gauge.
	lastCP atomic.Int64

	// cpMu serializes whole checkpoints: overlapping WriteCheckpoint
	// calls would each publish a manifest and then prune every snapshot
	// but their own, so the one finishing second could delete the file
	// the surviving manifest points at.
	cpMu sync.Mutex
	// life fences Close against in-flight checkpoints: Checkpoint holds
	// the read side across its tree walk and log sync, Close takes the
	// write side before releasing the writer and the tree.
	life sync.RWMutex
}

// RecoveryStats describes what OpenDurable had to do to rebuild state.
type RecoveryStats struct {
	// SnapshotKeys is the number of pairs bulk-loaded from the
	// checkpoint snapshot (0 when none existed).
	SnapshotKeys uint64
	// SnapshotLSN is the manifest's replay-start LSN.
	SnapshotLSN uint64
	// Replayed is the number of log records re-applied.
	Replayed int
	// LastLSN is the highest LSN found in the log.
	LastLSN uint64
	// TornTail reports that a torn final record was found and truncated.
	TornTail bool
	// MaxTxnID is the highest transaction ID observed in the replayed log
	// suffix (0 when none). The transaction layer seeds its ID counter
	// above it so a new prepare can never collide with a stale surviving
	// decision record.
	MaxTxnID uint64
	// SnapshotLoad and Replay are the wall-clock durations of the two
	// recovery phases.
	SnapshotLoad time.Duration
	Replay       time.Duration
}

// ErrDurableClosed is returned by operations on a closed Durable.
var ErrDurableClosed = errors.New("bwtree: durable tree closed")

// OpenDurable opens (creating or recovering) a durable tree rooted at
// dir. If dir holds a previous incarnation's state, the tree is rebuilt:
// the newest checkpoint snapshot is bulk-loaded, the log tail is
// replayed (truncating a torn final record), and logging resumes at the
// next LSN.
func OpenDurable(dir string, o DurableOptions) (*Durable, error) {
	if o.Tree.NonUnique {
		// The logical redo log records one value per key; replay depends on
		// unique-key semantics (insert-if-absent / update-if-present).
		return nil, errors.New("bwtree: durable trees require unique-key mode")
	}
	d := &Durable{dir: dir, o: o, seed: maphash.MakeSeed()}

	m, haveCP, err := wal.LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	d.t = core.New(o.Tree)
	if haveCP {
		d.rec.SnapshotLSN = m.LSN
		t0 := time.Now()
		if err := loadSnapshot(d.t, dir, m); err != nil {
			d.t.Close()
			return nil, err
		}
		d.rec.SnapshotKeys = m.Count
		d.rec.SnapshotLoad = time.Since(t0)
	}

	t0 := time.Now()
	committed := o.TxnCommitted
	preTorn := false
	if committed == nil {
		// Standalone decision pre-scan: a surviving two-phase prepare
		// applies iff its decision record also survives in this log.
		// Decisions and the ID high-water mark come from the same pass, so
		// a stale decision that could poison a future prepare necessarily
		// pushes the next incarnation's IDs above itself. (The pass also
		// truncates a torn tail; remember it — the main replay then finds
		// the log already clean.)
		set, maxID, torn, perr := ScanTxnDecisions(dir)
		if perr != nil {
			d.t.Close()
			return nil, perr
		}
		d.rec.MaxTxnID = maxID
		preTorn = torn
		committed = func(id uint64) bool { return set[id] }
	}
	var st wal.ReplayStats
	if haveCP {
		// Tail replay over snapshot state: apply records through sessions,
		// partitioned by key so per-key order is kept.
		st, err = replayParallel(d.t, dir, m.LSN, d.seed, committed)
	} else {
		// No snapshot: the tree is empty, so the log alone determines the
		// final state. Fold it into a map and BulkLoad — far cheaper than
		// a million individual root-to-leaf inserts.
		st, err = replayFold(d.t, dir, committed)
	}
	if err != nil {
		d.t.Close()
		return nil, err
	}
	d.rec.Replayed = st.Records
	d.rec.LastLSN = st.MaxLSN
	d.rec.TornTail = st.Torn || preTorn
	d.rec.Replay = time.Since(t0)

	next := st.MaxLSN + 1
	if m.LSN+1 > next {
		next = m.LSN + 1
	}
	d.w, err = wal.NewWriter(dir, o.WAL, next)
	if err != nil {
		d.t.Close()
		return nil, err
	}
	d.lastCP.Store(time.Now().UnixNano())
	if d.rec.Replayed > 0 || d.rec.TornTail {
		// Surface the recovery in the flight recorder (no-op unless the
		// tree was opened with FlightRecorderSize set).
		d.t.AnomalyNote(fmt.Sprintf(
			"recovery: replayed %d records after LSN %d (torn tail: %v)",
			d.rec.Replayed, d.rec.SnapshotLSN, d.rec.TornTail))
	}
	return d, nil
}

// CheckpointAge returns the time since the last durability baseline (the
// last successful Checkpoint, or recovery at open).
func (d *Durable) CheckpointAge() time.Duration {
	return time.Duration(time.Now().UnixNano() - d.lastCP.Load())
}

// ScanTxnDecisions reads dir's log tail (after its manifest LSN, when a
// checkpoint exists) and reports every transaction ID carrying a
// surviving OpTxnCommit decision record, plus the highest transaction ID
// seen on any transaction record. A sharded store runs this over every
// shard directory before opening them, merges the results, and passes
// the union as DurableOptions.TxnCommitted — a decision surviving in any
// participant's log then commits the prepares in all of them.
//
// The scan truncates a torn final record exactly as replay would (the
// two must agree on where the log ends); torn reports whether it did, so
// callers can surface the truncation even though the subsequent open
// finds the log already clean.
//
// Prune safety: a decision is appended to the same log as each prepare
// it commits, after it — so a surviving prepare's decision sits above
// the same manifest LSN, and the per-shard scans collectively see every
// decision that any surviving prepare needs.
func ScanTxnDecisions(dir string) (committed map[uint64]bool, maxTxnID uint64, torn bool, err error) {
	m, _, err := wal.LoadManifest(dir)
	if err != nil {
		return nil, 0, false, err
	}
	set := make(map[uint64]bool)
	st, err := wal.Replay(dir, m.LSN, func(r wal.Record) error {
		if wal.IsTxnOp(r.Op) {
			if r.Value > maxTxnID {
				maxTxnID = r.Value
			}
			if r.Op == wal.OpTxnCommit {
				set[r.Value] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, 0, false, err
	}
	return set, maxTxnID, st.Torn, nil
}

// replayFold recovers a log-only directory into an empty tree: each
// key's final state is decided by folding its own record sequence with
// the guarded unique-key semantics (insert-if-absent, update-if-present,
// delete), then the surviving pairs are bulk-loaded in key order.
func replayFold(t *Tree, dir string, committed func(uint64) bool) (wal.ReplayStats, error) {
	// Presize the fold map from the log's on-disk footprint (records are
	// at least ~20 bytes framed) — incremental growth to hundreds of
	// thousands of entries otherwise dominates recovery.
	hint := int(wal.DirSize(dir) / 20)
	if hint > 1<<26 {
		hint = 1 << 26
	}
	state := make(map[string]uint64, hint)
	fold := func(op byte, key []byte, value uint64) error {
		switch op {
		case wal.OpInsert:
			if _, ok := state[string(key)]; !ok {
				state[string(key)] = value
			}
		case wal.OpUpdate:
			if _, ok := state[string(key)]; ok {
				state[string(key)] = value
			}
		case wal.OpDelete:
			delete(state, string(key))
		default:
			return errors.New("bwtree: unknown op in log record")
		}
		return nil
	}
	st, err := wal.Replay(dir, 0, func(r wal.Record) error {
		switch r.Op {
		case wal.OpTxn, wal.OpTxnPrep:
			// A self-contained commit always applies; a two-phase prepare
			// applies iff its decision survived (presumed abort). Either
			// way the record is one frame, so its sub-ops fold all-or-none.
			if r.Op == wal.OpTxnPrep && !committed(r.Value) {
				return nil
			}
			ops, derr := wal.DecodeTxnOps(r.Key)
			if derr != nil {
				return derr
			}
			for i := range ops {
				if ferr := fold(ops[i].Op, ops[i].Key, ops[i].Value); ferr != nil {
					return ferr
				}
			}
			return nil
		case wal.OpTxnCommit:
			return nil // decision only; carries no writes
		}
		return fold(r.Op, r.Key, r.Value)
	})
	if err != nil || len(state) == 0 {
		return st, err
	}
	type kv struct {
		k string
		v uint64
	}
	pairs := make([]kv, 0, len(state))
	for k, v := range state {
		pairs = append(pairs, kv{k, v})
	}
	slices.SortFunc(pairs, func(a, b kv) int { return strings.Compare(a.k, b.k) })
	i := 0
	err = t.BulkLoad(func() ([]byte, uint64, bool) {
		if i >= len(pairs) {
			return nil, 0, false
		}
		p := pairs[i]
		i++
		return []byte(p.k), p.v, true
	})
	return st, err
}

// replayParallel re-applies the log tail after afterLSN, fanned out over
// several applier goroutines. The log's total order only matters per key
// — the tree's final state for a key is determined by that key's own
// record sequence — so records are partitioned by key hash: one key, one
// applier, original order. Cross-key interleaving is free parallelism.
func replayParallel(t *Tree, dir string, afterLSN uint64, seed maphash.Seed, committed func(uint64) bool) (wal.ReplayStats, error) {
	nw := runtime.GOMAXPROCS(0)
	if nw > 8 {
		nw = 8
	}
	if nw < 1 {
		nw = 1
	}
	// A chunk carries records for one applier: opcodes, cumulative key
	// offsets into one arena (safe to slice only once the chunk is sealed,
	// since append may reallocate the arena), and values.
	type chunk struct {
		ops   []byte
		koff  []int
		arena []byte
		vals  []uint64
	}
	const chunkRecs = 1024
	chans := make([]chan chunk, nw)
	var wg sync.WaitGroup
	for i := range chans {
		chans[i] = make(chan chunk, 4)
		wg.Add(1)
		go func(ch chan chunk) {
			defer wg.Done()
			s := t.NewSession()
			defer s.Release()
			for c := range ch {
				start := 0
				for j, op := range c.ops {
					key := c.arena[start:c.koff[j]]
					start = c.koff[j]
					switch op {
					case wal.OpInsert:
						s.Insert(key, c.vals[j])
					case wal.OpUpdate:
						s.Update(key, c.vals[j])
					case wal.OpDelete:
						s.Delete(key, c.vals[j])
					}
				}
			}
		}(chans[i])
	}

	pend := make([]chunk, nw)
	flush := func(i int) {
		if len(pend[i].ops) > 0 {
			chans[i] <- pend[i]
			pend[i] = chunk{}
		}
	}
	scatter := func(op byte, key []byte, value uint64) {
		i := int(maphash.Bytes(seed, key) % uint64(nw))
		c := &pend[i]
		c.ops = append(c.ops, op)
		c.arena = append(c.arena, key...)
		c.koff = append(c.koff, len(c.arena))
		c.vals = append(c.vals, value)
		if len(c.ops) >= chunkRecs {
			flush(i)
		}
	}
	st, err := wal.Replay(dir, afterLSN, func(r wal.Record) error {
		switch r.Op {
		case wal.OpInsert, wal.OpUpdate, wal.OpDelete:
			scatter(r.Op, r.Key, r.Value)
			return nil
		case wal.OpTxn, wal.OpTxnPrep:
			// Sub-ops of an applying transaction scatter per key like any
			// other record: replay only needs per-key order, and a commit's
			// keys are distinct, so its sub-ops never race each other. The
			// commit's atomicity was already decided by framing — a record
			// that survived replays in full.
			if r.Op == wal.OpTxnPrep && !committed(r.Value) {
				return nil
			}
			ops, derr := wal.DecodeTxnOps(r.Key)
			if derr != nil {
				return derr
			}
			for i := range ops {
				scatter(ops[i].Op, ops[i].Key, ops[i].Value)
			}
			return nil
		case wal.OpTxnCommit:
			return nil
		default:
			return errors.New("bwtree: unknown op in log record")
		}
	})
	for i := range chans {
		flush(i)
		close(chans[i])
	}
	wg.Wait()
	return st, err
}

// loadSnapshot bulk-loads a checkpoint snapshot into an empty tree.
func loadSnapshot(t *Tree, dir string, m wal.Manifest) error {
	type pair struct {
		k []byte
		v uint64
	}
	// BulkLoad pulls; ReadSnapshot pushes. Bridge with a small channel so
	// neither side buffers the whole snapshot.
	ch := make(chan pair, 1024)
	errc := make(chan error, 1)
	go func() {
		errc <- wal.ReadSnapshot(dir, m, func(k []byte, v uint64) error {
			kk := make([]byte, len(k))
			copy(kk, k)
			ch <- pair{kk, v}
			return nil
		})
		close(ch)
	}()
	loadErr := t.BulkLoad(func() ([]byte, uint64, bool) {
		p, ok := <-ch
		if !ok {
			return nil, 0, false
		}
		return p.k, p.v, true
	})
	for range ch { // drain on BulkLoad error so the reader goroutine exits
	}
	if err := <-errc; err != nil {
		return err
	}
	return loadErr
}

// Tree returns the wrapped in-memory tree for reads, stats, and
// validation. Mutating it directly bypasses the log; use sessions from
// NewSession for writes.
func (d *Durable) Tree() *Tree { return d.t }

// RecoveryStats reports what OpenDurable did.
func (d *Durable) RecoveryStats() RecoveryStats { return d.rec }

// WALStats returns the log writer's counters and histograms (fsync
// latency, group-commit batch sizes).
func (d *Durable) WALStats() wal.Stats { return d.w.Stats() }

// DurableLSN returns the highest fsynced LSN.
func (d *Durable) DurableLSN() uint64 { return d.w.DurableLSN() }

// Sync blocks until every operation logged so far is fsynced.
func (d *Durable) Sync() error { return d.w.Sync() }

// stripe returns the commit-ordering lock for key.
func (d *Durable) stripe(key []byte) *sync.Mutex {
	return &d.stripes[maphash.Bytes(d.seed, key)&0xff]
}

// NStripes is the number of commit-ordering stripe locks on a Durable.
// Exported for the transaction layer, which orders multi-key lock
// acquisition by stripe index.
const NStripes = 256

// StripeOf returns key's commit-ordering stripe index in [0, NStripes).
func (d *Durable) StripeOf(key []byte) int {
	return int(maphash.Bytes(d.seed, key) & 0xff)
}

// StripeLock acquires stripe i. The transaction layer holds every write
// stripe of a commit from log append through tree apply — the same
// protocol as single-key commits, which is what keeps Checkpoint's
// stripe-sweep barrier sound in the presence of multi-key commits.
func (d *Durable) StripeLock(i int) { d.stripes[i].Lock() }

// StripeUnlock releases stripe i.
func (d *Durable) StripeUnlock(i int) { d.stripes[i].Unlock() }

// StripeTryLock attempts stripe i without blocking. Read validation uses
// it so a reader never waits on a writer (wait-free validation; a failed
// try is a conservative abort).
func (d *Durable) StripeTryLock(i int) bool { return d.stripes[i].TryLock() }

// AppendTxn logs one transaction record (wal.OpTxn / OpTxnPrep /
// OpTxnCommit) and returns its LSN. The caller must hold every write
// stripe of the transaction across this call and the in-memory apply.
func (d *Durable) AppendTxn(op byte, txnID uint64, ops []wal.TxnOp) (uint64, error) {
	return d.w.AppendTxn(op, txnID, ops)
}

// WaitLSN blocks until lsn is fsynced.
func (d *Durable) WaitLSN(lsn uint64) error { return d.w.WaitDurable(lsn) }

// SyncOnCommit reports whether the store was opened with the
// acknowledged-write guarantee.
func (d *Durable) SyncOnCommit() bool { return d.o.SyncOnCommit }

// DurableSession is a single goroutine's handle to a Durable tree: the
// wrapped Session plus the logging protocol. Mutations return an error
// only for durability failures (closed writer, simulated crash, disk
// error); the bool carries the same semantics as the Tree operation. When
// a mutation returns an error after Crash, its effect may or may not have
// been applied in memory and may or may not be durable — the caller must
// treat it as unresolved.
type DurableSession struct {
	d *Durable
	s *Session
}

// NewSession registers a worker goroutine.
func (d *Durable) NewSession() *DurableSession {
	return &DurableSession{d: d, s: d.t.NewSession()}
}

// Release returns the session's resources.
func (ds *DurableSession) Release() { ds.s.Release() }

// Session exposes the wrapped tree session for read-only use (iterators).
func (ds *DurableSession) Session() *Session { return ds.s }

// walOpClass maps a log op byte to its latency/trace class.
func walOpClass(op byte) obs.OpClass {
	switch op {
	case wal.OpUpdate:
		return obs.OpUpdate
	case wal.OpDelete:
		return obs.OpDelete
	default:
		return obs.OpInsert
	}
}

// commit runs the write-ahead protocol for one mutation: under the key's
// stripe lock, append the record (assigning its LSN) and apply it to the
// tree; then, outside the lock, wait for group commit if configured.
//
// Deep-path tracing wraps the whole protocol in one probe operation: the
// inner tree apply nests inside it (see obs.Probe.OpBegin), so a sampled
// commit's trace carries the WAL-append and fsync-wait spans next to the
// in-memory phases, and its flight-recorder latency is the full
// acknowledged-commit latency, not just the tree apply.
func (ds *DurableSession) commit(op byte, key []byte, value uint64, apply func() bool) (bool, error) {
	return commitProbed(ds.d, ds.s.Probe(), op, key, value, apply)
}

func commitProbed(d *Durable, p *obs.Probe, op byte, key []byte, value uint64, apply func() bool) (ok bool, err error) {
	var opT0 int64
	if p != nil {
		p.OpBegin()
		opT0 = obs.Now()
		defer func() { p.OpEnd(walOpClass(op), opT0, obs.Now()-opT0) }()
	}
	st := d.stripe(key)
	st.Lock()
	var t0 int64
	if p.Active() {
		t0 = obs.Now()
	}
	lsn, err := d.w.Append(op, key, value)
	if t0 != 0 {
		p.Span(obs.PhaseWALAppend, t0, lsn)
	}
	if err != nil {
		st.Unlock()
		return false, err
	}
	ok = apply()
	st.Unlock()
	if d.o.SyncOnCommit {
		if t0 = 0; p.Active() {
			t0 = obs.Now()
		}
		err = d.w.WaitDurable(lsn)
		if t0 != 0 {
			p.Span(obs.PhaseFsyncWait, t0, lsn)
		}
		if err != nil {
			return ok, err
		}
	}
	return ok, nil
}

// Insert adds (key, value); see Session.Insert for the bool semantics.
func (ds *DurableSession) Insert(key []byte, value uint64) (bool, error) {
	return ds.commit(wal.OpInsert, key, value, func() bool { return ds.s.Insert(key, value) })
}

// Update replaces key's value; see Session.Update.
func (ds *DurableSession) Update(key []byte, value uint64) (bool, error) {
	return ds.commit(wal.OpUpdate, key, value, func() bool { return ds.s.Update(key, value) })
}

// Delete removes (key, value); see Session.Delete.
func (ds *DurableSession) Delete(key []byte, value uint64) (bool, error) {
	return ds.commit(wal.OpDelete, key, value, func() bool { return ds.s.Delete(key, value) })
}

// Lookup reads through to the tree (reads are never logged).
func (ds *DurableSession) Lookup(key []byte, out []uint64) []uint64 {
	return ds.s.Lookup(key, out)
}

// Scan reads through to the tree.
func (ds *DurableSession) Scan(start []byte, n int, visit func(key []byte, value uint64) bool) int {
	return ds.s.Scan(start, n, visit)
}

// conv returns the mutex-guarded session backing Durable's convenience
// methods; d.mu must be held.
func (d *Durable) conv() (*Session, error) {
	if d.closed {
		return nil, ErrDurableClosed
	}
	if d.convs == nil {
		d.convs = d.t.NewSession()
	}
	return d.convs, nil
}

// Insert is a convenience single-caller form of DurableSession.Insert;
// concurrent workloads should use per-goroutine sessions instead.
func (d *Durable) Insert(key []byte, value uint64) (bool, error) {
	return d.convCommit(wal.OpInsert, key, value, func(s *Session) bool { return s.Insert(key, value) })
}

// Update is the convenience form of DurableSession.Update.
func (d *Durable) Update(key []byte, value uint64) (bool, error) {
	return d.convCommit(wal.OpUpdate, key, value, func(s *Session) bool { return s.Update(key, value) })
}

// Delete is the convenience form of DurableSession.Delete.
func (d *Durable) Delete(key []byte, value uint64) (bool, error) {
	return d.convCommit(wal.OpDelete, key, value, func(s *Session) bool { return s.Delete(key, value) })
}

// Lookup is the convenience read.
func (d *Durable) Lookup(key []byte, out []uint64) ([]uint64, error) {
	d.mu.Lock()
	s, err := d.conv()
	if err != nil {
		d.mu.Unlock()
		return nil, err
	}
	res := s.Lookup(key, out)
	d.mu.Unlock()
	return res, nil
}

func (d *Durable) convCommit(op byte, key []byte, value uint64, apply func(*Session) bool) (bool, error) {
	d.mu.Lock()
	s, err := d.conv()
	if err != nil {
		d.mu.Unlock()
		return false, err
	}
	// The conv session is shared across callers under d.mu, and the
	// group-commit wait happens after the unlock — probe state (single
	// owner by contract) cannot safely span it, so the convenience path
	// stays unprobed. Hot workloads use DurableSession.commit, which is.
	st := d.stripe(key)
	st.Lock()
	lsn, err := d.w.Append(op, key, value)
	if err != nil {
		st.Unlock()
		d.mu.Unlock()
		return false, err
	}
	ok := apply(s)
	st.Unlock()
	d.mu.Unlock()
	if d.o.SyncOnCommit {
		if err := d.w.WaitDurable(lsn); err != nil {
			return ok, err
		}
	}
	return ok, nil
}

// Checkpoint writes an epoch-consistent snapshot of the tree plus a
// manifest, and prunes log segments the snapshot covers. It runs
// concurrently with writers: the snapshot is fuzzy (each leaf is a
// consistent cut, the whole file is not), which is safe because replay
// from the returned LSN re-applies any operation the walk raced with and
// the guarded operations converge. The log is forced durable through the
// walk's end before the manifest is published.
//
// Returns the manifest LSN (the new replay start). Concurrent
// Checkpoint calls serialize, and Close waits for an in-flight
// checkpoint before tearing the writer and tree down.
func (d *Durable) Checkpoint() (uint64, error) {
	d.cpMu.Lock()
	defer d.cpMu.Unlock()
	d.life.RLock()
	defer d.life.RUnlock()
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return 0, ErrDurableClosed
	}
	d.mu.Unlock()

	cpLSN := d.w.AppendedLSN()
	// commit holds the key's stripe lock from Append (LSN assignment)
	// through the tree apply, so an operation with LSN <= cpLSN that is
	// not yet visible in the tree still owns its stripe. Sweeping every
	// stripe is therefore a barrier: once each lock has been taken and
	// released, the tree reflects every operation at or below cpLSN.
	// Without it the walk could miss an acknowledged op whose LSN the
	// manifest claims to cover — and replay starts strictly after the
	// manifest LSN, so the op would be lost.
	for i := range d.stripes {
		d.stripes[i].Lock()
		d.stripes[i].Unlock() // empty critical section is the barrier
	}
	s := d.t.NewSession()
	defer s.Release()
	it := s.NewIterator()
	it.SeekFirst()
	m, err := wal.WriteCheckpoint(d.dir, cpLSN, func() ([]byte, uint64, bool) {
		if !it.Valid() {
			return nil, 0, false
		}
		k, v := it.Key(), it.Value()
		it.Next()
		return k, v, true
	}, func() error {
		// Force the log durable through the walk's end so every
		// operation possibly reflected in the snapshot is also logged on
		// disk before the manifest points at it.
		return d.w.Sync()
	})
	if err != nil {
		return 0, err
	}
	d.lastCP.Store(time.Now().UnixNano())
	return m.LSN, nil
}

// Snapshot checkpoints a plain in-memory tree into dir so OpenDurable
// can later restore it: a snapshot file plus manifest at LSN 0, with no
// log. The tree must be quiescent for the snapshot to be a faithful
// point-in-time copy (with concurrent writers it is merely
// epoch-consistent, as with Durable.Checkpoint, but here there is no log
// to converge from). Returns the number of pairs written.
//
// dir must not already hold a log or checkpoint: an LSN-0 snapshot next
// to existing segments would make the next open replay old records on
// top of this tree's state.
func Snapshot(t *Tree, dir string) (uint64, error) {
	if _, ok, err := wal.LoadManifest(dir); err != nil {
		return 0, err
	} else if ok || wal.DirSize(dir) > 0 {
		return 0, errors.New("bwtree: Snapshot target directory already holds a durable store")
	}
	s := t.NewSession()
	defer s.Release()
	it := s.NewIterator()
	it.SeekFirst()
	m, err := wal.WriteCheckpoint(dir, 0, func() ([]byte, uint64, bool) {
		if !it.Valid() {
			return nil, 0, false
		}
		k, v := it.Key(), it.Value()
		it.Next()
		return k, v, true
	}, nil)
	if err != nil {
		return 0, err
	}
	return m.Count, nil
}

// Close flushes and fsyncs the log, then shuts the tree down. It does
// not checkpoint; call Checkpoint first to make the next open fast.
func (d *Durable) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	if d.convs != nil {
		d.convs.Release()
		d.convs = nil
	}
	d.mu.Unlock()
	// Wait for any in-flight Checkpoint (it holds the lifecycle
	// read-lock across its walk) before releasing the writer and tree;
	// checkpoints arriving after this see closed and return early.
	d.life.Lock()
	defer d.life.Unlock()
	err := d.w.Close()
	d.t.Close()
	return err
}

// Crash simulates a power failure for durability testing: all buffered,
// un-fsynced log data is discarded (the active segment is truncated to
// its last fsync) and every mutation from then on fails with
// wal.ErrCrashed. The in-memory tree stays alive — concurrent sessions
// may be mid-operation — but is no longer authoritative; call Close to
// release it, then reopen the directory with OpenDurable to get the
// surviving state.
func (d *Durable) Crash() error {
	d.life.RLock()
	defer d.life.RUnlock()
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.mu.Unlock()
	return d.w.Crash()
}
